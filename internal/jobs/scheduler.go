package jobs

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/pool"
	"loopsched/internal/stats"
	"loopsched/internal/trace"
)

// Config configures a jobs scheduler.
type Config struct {
	// Workers is the shared team size P; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; Submit blocks once this many
	// jobs are waiting (backpressure instead of unbounded memory growth).
	// <= 0 selects 1024.
	QueueDepth int
	// MaxWorkersPerJob caps every job's sub-team size; <= 0 means no cap
	// (a lone job may use the whole team).
	MaxWorkersPerJob int
	// DefaultGrain is the self-scheduling chunk size used by elastic jobs
	// that do not set Request.Grain; <= 0 selects a per-job heuristic
	// (roughly 8 chunks per team member).
	DefaultGrain int
	// DisableElastic freezes every sub-team at admission and partitions each
	// job statically — the paper's rigid teams. It exists for comparison
	// (the convoy and straggler benchmarks measure elastic against it) and
	// for callers that require the static-block body contract.
	DisableElastic bool
	// TenantWeights pre-registers tenant accounts with fair-share weights
	// (values < 1 are clamped to 1). Tenants not listed here are created on
	// first use with weight 1; weights can be changed at runtime with
	// SetTenantWeight.
	TenantWeights map[string]int
	// DisableFair replaces the weighted-fair admission policy with the
	// original single FIFO: tenants, weights, priorities and deadlines are
	// ignored for ordering (the tenant accounts still meter served work) and
	// the dispatcher never posts preemption targets. It exists for
	// comparison — the fairshare benchmark measures the policy against it.
	DisableFair bool
	// LatencyWindow is the number of recent completions kept for the latency
	// percentiles in Stats; <= 0 selects 1024.
	LatencyWindow int
	// LockOSThread locks the workers to OS threads (benchmark fidelity);
	// serving daemons and tests usually leave it false so idle workers are
	// cheap goroutines.
	LockOSThread bool
	// Tracer, when non-nil, records every job's lifecycle transitions
	// (submitted, admitted, dispatched, grown, peeled, preempted, stolen,
	// joined, ...) and per-chunk-wave participant stints as spans, and fans
	// the event stream out to subscribers. Nil runs untraced: every hook
	// compiles down to one nil check, keeping the fair-scheduler hot path
	// unchanged. Shards of a Sharded pool share the pool's tracer.
	Tracer *trace.Tracer
	// SLOTarget is the per-tenant deadline-hit objective used by the SLO
	// accounting (see slo.go): the burn rate reported per tenant is the
	// windowed miss fraction divided by the budget (1 - SLOTarget). Outside
	// (0, 1) selects 0.99.
	SLOTarget float64
	// MaxWait bounds how long Submit may block for a queue (or blocked) slot
	// once QueueDepth is reached: past it the submission is rejected with
	// ErrBacklogged instead of waiting forever. <= 0 keeps the original
	// unbounded block. Individual requests can skip the wait entirely with
	// Request.NoWait.
	MaxWait time.Duration
	// ShedInfeasible enables the deadline-feasibility check at submit: a job
	// whose deadline cannot be met even if the queue drains at the measured
	// service rate is rejected with ErrInfeasible (carrying a suggested retry
	// delay) instead of being admitted only to miss. Jobs without deadlines,
	// dependent jobs (After) and batches are never shed by this check.
	ShedInfeasible bool
	// BreakerBurnRate arms the per-tenant circuit breakers (see
	// admission.go): when a tenant's deadline-miss EWMA implies an SLO burn
	// rate at or above this limit while the tenant holds at least
	// BreakerMinShare of the queue, its submissions are shed at intake with
	// ErrBreakerOpen until a cooldown and a successful half-open probe.
	// <= 0 (the default) disables the breakers.
	BreakerBurnRate float64
	// BreakerMinShare is the queue-share guard of the breakers: the minimum
	// fraction of the pool's queued jobs a tenant must hold for its breaker
	// to open (a tenant that misses deadlines without crowding the queue is
	// not shed). <= 0 selects 0.25.
	BreakerMinShare float64
	// BreakerCooldown is how long an open breaker sheds before half-opening
	// to probe for recovery. <= 0 selects 250ms.
	BreakerCooldown time.Duration
	// Checkpoints, when non-nil, persists progress snapshots for requests
	// that carry a Request.Checkpoint: a Put at admission and at every
	// suspension, a Delete at completion or cancellation, and — deliberately
	// — no Delete at Close, so shutting down with suspended jobs is
	// suspend-to-disk and the next process recovers them with Load. All
	// store calls happen at quiescent lifecycle transitions, never on the
	// per-chunk path. Shards of a Sharded pool share the pool's store.
	Checkpoints CheckpointStore
	// Name is used in diagnostics.
	Name string

	// shard is this scheduler's index within its owning Sharded pool (0 for
	// standalone schedulers); carried on every trace event.
	shard int

	// hooks connects this scheduler to sibling shards of a Sharded pool.
	// With hooks set, a dispatcher that runs out of local work steals whole
	// queued jobs from siblings and lends idle workers to their running
	// elastic jobs. Nil for standalone schedulers.
	hooks *stealHooks

	// pool points back to the owning Sharded pool, so blocked jobs released
	// by an upstream's join wave can be admitted to the least-loaded shard
	// at release time instead of the shard that happened to take the
	// submission. Nil for standalone schedulers.
	pool *Sharded

	// admission is the overload-protection state (see admission.go). Every
	// shard of a Sharded pool shares the pool's instance — a tenant's breaker
	// opens pool-wide — the same way hooks and pool are installed; New fills
	// it for standalone schedulers.
	admission *admissionState
}

// stealHooks is the cross-shard cooperation contract a Sharded pool installs
// on each of its shards. Both callbacks run on the shard's dispatcher
// goroutine; they must be non-blocking and may return nil.
type stealHooks struct {
	// totalP is the worker count of the whole sharded pool: the participant
	// cap of an elastic job, which lent workers from sibling shards may grow
	// past the home shard's own size.
	totalP int
	// interval throttles how often an idle dispatcher re-scans its siblings
	// when it has nothing else to wake for.
	interval time.Duration
	// steal returns a whole queued job pulled from a sibling shard, already
	// re-homed onto the calling scheduler, or nil.
	steal func(thief *Scheduler) *Job
	// lend returns a running under-provisioned elastic job on a sibling
	// shard that can absorb the caller's idle workers, or nil.
	lend func(thief *Scheduler) *Job
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.99
	}
	if c.BreakerMinShare <= 0 {
		c.BreakerMinShare = 0.25
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.Name == "" {
		c.Name = "jobs"
	}
}

// Scheduler multiplexes parallel-loop jobs from many concurrent submitters
// onto one persistent worker team. All methods are safe for concurrent use.
//
// The intake/dispatch spine is allocation-free and handoff-direct: jobs come
// out of a per-scheduler freelist, submitters push them straight into the
// weighted-fair queue (no intake channel), and when the pool is idle the
// submitter bypasses the dispatcher entirely — it pops parked workers from
// the shared idle stack and performs the release wave itself, so the handoff
// is one mutex pop plus one buffered channel send per worker (the channel
// send is the futex-style park/unpark: an idle worker is a goroutine parked
// in a channel receive, and the sender's goready makes it runnable without a
// context switch on the submitter). The dispatcher remains the arbiter
// whenever work is queued: fairness, preemption, growth and cross-shard
// stealing all run on its goroutine, woken by a buffered-signal channel and
// a backed-off steal timer instead of polling.
type Scheduler struct {
	cfg  Config
	p    int
	team *pool.Team

	// fq is the admission queue and policy: per-tenant accounts, weights,
	// priorities, deadlines (see fair.go). Submitters push directly into it;
	// sibling shards steal from it directly.
	fq *fairQueue
	// wakeC is the dispatcher's doorbell (buffered-signal pattern):
	// submitters, releasers and parking workers ring it after publishing
	// whatever the dispatcher should look at.
	wakeC chan struct{}
	// idleMu/idleIDs is the shared stack of parked workers. The dispatcher
	// pops teams from it; so does the submit fast path when nothing is
	// queued. idleCond signals Close, which waits for all P to park.
	idleMu   sync.Mutex
	idleCond *sync.Cond
	idleIDs  []int
	// assign carries at most one in-flight assignment per worker: a release
	// wave is k buffered value sends and never blocks.
	assign []chan assignment

	// freeMu/freeJobs is the job freelist: Release pushes recycled jobs,
	// Submit pops them. A plain bounded stack, not a sync.Pool, so a GC
	// cycle cannot empty it mid-benchmark.
	freeMu   sync.Mutex
	freeJobs []*Job

	submitMu sync.RWMutex
	closed   bool
	// releaseClosed closes the release window: set (under submitMu) only
	// after the blocked gauge drained to zero during Close, strictly before
	// intakeClosed. acceptReleased completes its enqueue under the read
	// lock, so no release can ever race the intake close.
	releaseClosed bool
	// intakeClosed tells the dispatcher no further job can enter fq (set by
	// Close after the submit and release windows shut); the dispatcher exits
	// once it also finds fq empty.
	intakeClosed   atomic.Bool
	dispatcherDone chan struct{}
	closeDone      chan struct{}

	// gateMu/gateCond/blockedHeld apply QueueDepth backpressure to
	// dependent submissions: a blocked job never enters the fair queue, so
	// without this gate a pipeline fan-out could park unbounded memory
	// behind one upstream. blockedHeld mirrors the blocked gauge under a
	// mutex so waiters can sleep on the condition. queuedHeld applies the
	// same bound to the queued population: every queued job holds one slot,
	// reserved at Submit (blocking at the cap) and released when the job is
	// admitted, canceled, or stolen away.
	gateMu      sync.Mutex
	gateCond    *sync.Cond
	blockedHeld int
	queuedHeld  int

	// growSet is the registry of running elastic jobs: the dispatcher grows
	// and preempts over it, and sibling shards read it to find jobs worth
	// lending workers to. Lock order: growMu before fq.mu.
	growMu  sync.Mutex
	growSet map[*Job]struct{}
	// growables mirrors len(growSet) (updated under growMu) so parkWorker
	// can tell lock-free whether the dispatcher has running elastic jobs to
	// grow a freed worker onto, or can stay parked.
	growables atomic.Int32
	// runningScratch/sharesScratch are preemptForWaiting's reusable maps
	// (guarded by growMu), so steady queue pressure allocates nothing.
	runningScratch map[string]int
	sharesScratch  map[string]int

	// Hot counters, padded per the false-sharing discipline of
	// internal/barrier/pad.go: depth is read on every chunk claim (the peel
	// check), busy is bumped twice per assignment by every worker, and both
	// would otherwise share lines with each other and the colder counters
	// below, so one worker's busy.Add would invalidate every other worker's
	// depth load.
	depth   barrier.PaddedInt64
	busy    barrier.PaddedInt64
	running barrier.PaddedInt64

	// suspendMu/suspendSet is the registry of this scheduler's suspended
	// jobs (keyed by home, like the blocked gauge), so Close can sweep them:
	// nothing else would ever retire a job parked in Suspended. suspendClosed
	// closes the park-vs-sweep race — a job that parks after the sweep is
	// canceled by the parking worker itself.
	suspendMu     sync.Mutex
	suspendSet    map[*Job]struct{}
	suspendClosed bool

	submitted      atomic.Int64
	completed      atomic.Int64
	canceled       atomic.Int64
	itersDone      atomic.Int64
	grown          atomic.Int64
	peeled         atomic.Int64
	stolen         atomic.Int64
	lent           atomic.Int64
	blocked        atomic.Int64
	released       atomic.Int64
	depCanceled    atomic.Int64
	preempted      atomic.Int64
	deadlineMissed atomic.Int64
	// Admission-control rejections at this scheduler (see admission.go):
	// infeasible-deadline and bounded-wait sheds. Breaker sheds are counted
	// on the shared admission state instead — in a Sharded pool they happen
	// before routing and belong to no shard.
	infeasible atomic.Int64
	backlogged atomic.Int64
	// Suspend/checkpoint accounting: the suspended gauge (jobs parked in the
	// Suspended state, outside every queue) plus transition and store-write
	// counters.
	suspended      atomic.Int64
	suspendedTotal atomic.Int64
	resumedTotal   atomic.Int64
	ckptWrites     atomic.Int64
	ckptFails      atomic.Int64
	// lastRunNanos is an EWMA of recent job run times, feeding the
	// deadline-risk horizon of the preemption policy.
	lastRunNanos atomic.Int64

	lat latRing
}

// New creates and starts a jobs scheduler.
func New(cfg Config) *Scheduler {
	cfg.normalize()
	if cfg.admission == nil {
		cfg.admission = newAdmissionState(cfg)
	}
	s := &Scheduler{
		cfg:            cfg,
		p:              cfg.Workers,
		assign:         make([]chan assignment, cfg.Workers),
		dispatcherDone: make(chan struct{}),
		closeDone:      make(chan struct{}),
		wakeC:          make(chan struct{}, 1),
		fq:             newFairQueue(cfg.DisableFair, cfg.TenantWeights),
		growSet:        make(map[*Job]struct{}),
		suspendSet:     make(map[*Job]struct{}),
		idleIDs:        make([]int, 0, cfg.Workers),
	}
	s.idleCond = sync.NewCond(&s.idleMu)
	s.gateCond = sync.NewCond(&s.gateMu)
	if s.cfg.admission.share == nil && s.cfg.pool == nil {
		// Standalone pool view for the breakers' queue-share guard; Sharded
		// installs a pool-wide closure before constructing its shards.
		s.cfg.admission.share = func(tenant string) float64 {
			total := s.depth.Load()
			if total <= 0 {
				return 0
			}
			return float64(s.fq.depthOf(tenant)) / float64(total)
		}
	}
	s.lat.init(cfg.LatencyWindow)
	for w := 0; w < s.p; w++ {
		s.assign[w] = make(chan assignment, 1)
		s.idleIDs = append(s.idleIDs, w)
	}
	s.team = pool.New(pool.Config{Workers: s.p, LockOSThread: cfg.LockOSThread, Name: cfg.Name})
	s.team.StartAll(s.worker)
	go s.dispatch()
	return s
}

// newJob pops a recycled job from the freelist (or allocates one) and readies
// it for a fresh generation.
func (s *Scheduler) newJob() *Job {
	var j *Job
	s.freeMu.Lock()
	if n := len(s.freeJobs); n > 0 {
		j = s.freeJobs[n-1]
		s.freeJobs[n-1] = nil
		s.freeJobs = s.freeJobs[:n-1]
	}
	s.freeMu.Unlock()
	if j == nil {
		j = &Job{}
		j.waitCond.L = &j.waitMu
	}
	return j
}

// freeJob recycles a terminal job onto the freelist. The generation bump is
// first and the broadcast wakes any stale waiter parked across the Release,
// so late Wait callers observe ErrReleased instead of the next generation's
// fields. The freelist is bounded: beyond QueueDepth parked jobs the recycle
// is dropped and the garbage collector takes it, as before pooling.
func (s *Scheduler) freeJob(j *Job) {
	// A job abandoned on a failed submission path (closed, backlogged) must
	// not leave a snapshot behind for recovery to resurrect; for a released
	// completed job the delete is an idempotent no-op (recordCompletion
	// already dropped it).
	s.deleteCheckpoint(j)
	j.gen.Add(1)
	j.waitMu.Lock()
	j.lazyDone = nil
	j.waitMu.Unlock()
	j.waitCond.Broadcast()
	// Field reset: everything generation-specific, keeping the recyclable
	// capacity (partials, freeSubs, the cached barrier, the cond wiring).
	j.req = Request{}
	j.state.Store(int32(Pending))
	j.result, j.err = 0, nil
	j.workers.Store(0)
	j.elastic = false
	j.active.Store(0)
	j.maxK = 0
	j.acc = 0
	j.tenant, j.prio, j.seq = "", 0, 0
	j.deadline = time.Time{}
	j.shrinkTo.Store(0)
	j.suspendReq.Store(false)
	j.suspendedAt.Store(0)
	j.suspendedNanos.Store(0)
	j.ranNanos.Store(0)
	j.resumeFrom, j.resumeAcc, j.ckptSeed = 0, 0, 0
	j.ckpt = nil
	j.submitted, j.started = time.Time{}, time.Time{}
	j.s, j.home, j.pool = nil, nil, nil
	j.after, j.acyclic = nil, false
	j.tr = nil
	j.waits.Store(0)
	j.dependents, j.depErr = nil, nil
	s.freeMu.Lock()
	if len(s.freeJobs) < s.cfg.QueueDepth {
		s.freeJobs = append(s.freeJobs, j)
	}
	s.freeMu.Unlock()
}

// wake rings the dispatcher's doorbell (never blocks; a pending signal
// coalesces).
func (s *Scheduler) wake() {
	select {
	case s.wakeC <- struct{}{}:
	default:
	}
}

// parkWorker pushes a finished worker onto the idle stack, signals any Close
// waiting for the team to quiesce, and wakes the dispatcher — but only when
// the dispatcher has something to do with the freed worker: local tenants
// queued (depth), a running elastic job to grow back onto (growables), or
// sibling shards to scan for steals and lends (hooks; the steal timer is
// only armed while the dispatcher knows idle workers exist, so the wake must
// not be skipped). In the single-shard idle steady state every completion
// would otherwise pay a full empty dispatch scan.
func (s *Scheduler) parkWorker(id int) {
	s.idleMu.Lock()
	s.idleIDs = append(s.idleIDs, id)
	s.idleMu.Unlock()
	s.idleCond.Signal()
	if s.depth.Load() > 0 || s.growables.Load() > 0 || s.cfg.hooks != nil {
		s.wake()
	}
}

// grabIdle pops up to max parked workers into dst (reusing its capacity).
func (s *Scheduler) grabIdle(dst []int, max int) []int {
	s.idleMu.Lock()
	n := len(s.idleIDs)
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.idleIDs[len(s.idleIDs)-1])
		s.idleIDs = s.idleIDs[:len(s.idleIDs)-1]
	}
	s.idleMu.Unlock()
	return dst
}

// putIdle returns unused workers to the idle stack.
func (s *Scheduler) putIdle(ids []int) {
	if len(ids) == 0 {
		return
	}
	s.idleMu.Lock()
	s.idleIDs = append(s.idleIDs, ids...)
	s.idleMu.Unlock()
	s.idleCond.Signal()
}

// idleCount returns the number of parked workers.
func (s *Scheduler) idleCount() int {
	s.idleMu.Lock()
	n := len(s.idleIDs)
	s.idleMu.Unlock()
	return n
}

// P returns the team size.
func (s *Scheduler) P() int { return s.p }

// Name returns the scheduler's diagnostic name.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Submit enqueues a job and returns immediately. It blocks only when the
// admission queue is full. Submit is safe from any number of goroutines.
// A request with dependencies (Request.After) is parked in the Blocked state
// and enters the admission queue only when its last upstream completes.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	return s.submit(req, s.cfg.pool)
}

// submitPinned is Submit for shard-pinned jobs: a blocked job released by
// its upstreams re-enters this scheduler's own queue instead of routing to
// the least-loaded shard, preserving the pin.
func (s *Scheduler) submitPinned(req Request) (*Job, error) {
	return s.submit(req, nil)
}

func (s *Scheduler) submit(req Request, pool *Sharded) (*Job, error) {
	switch {
	case req.Body == nil && req.RBody == nil:
		return nil, errors.New("jobs: request needs a Body or an RBody")
	case req.Body != nil && req.RBody != nil:
		return nil, errors.New("jobs: request must set exactly one of Body and RBody")
	case req.RBody != nil && req.Combine == nil:
		return nil, errors.New("jobs: reducing request needs a Combine")
	}
	for _, u := range req.After {
		if u == nil {
			return nil, errors.New("jobs: nil upstream in After")
		}
	}
	if len(req.After) > 0 {
		if err := checkCycle(req.After); err != nil {
			return nil, err
		}
	}
	// Admission control (see admission.go), before any allocation: the
	// breaker check for standalone schedulers (a Sharded pool already ran it
	// before routing), then the deadline-feasibility estimate. Both are
	// opt-in, so the default submit path pays two nil-ish branch checks.
	if s.cfg.pool == nil && s.cfg.admission.breakersOn() {
		tenant := tenantName(req.Tenant)
		if retry, ok := s.cfg.admission.allow(tenant, time.Now()); !ok {
			// allow already counted the shed on the shared admission state
			// (the pool-wide ledger breaker sheds live on, whichever intake
			// front rejected them).
			s.traceShed(&req, tenant, "breaker")
			return nil, &OverloadError{Err: ErrBreakerOpen, RetryAfter: retry}
		}
	}
	if s.cfg.ShedInfeasible && req.N > 0 && len(req.After) == 0 && !req.Deadline.IsZero() {
		if retry, bad := s.infeasibleDelay(req.Deadline, time.Now()); bad {
			tenant := tenantName(req.Tenant)
			s.infeasible.Add(1)
			s.cfg.admission.noteInfeasible(tenant)
			s.traceShed(&req, tenant, "infeasible")
			return nil, &OverloadError{Err: ErrInfeasible, RetryAfter: retry}
		}
	}
	j := s.newJob()
	j.req = req
	j.s, j.home = s, s
	j.pool = pool
	j.submitted = time.Now()
	j.acyclic = true
	j.tenant, j.prio, j.deadline = tenantName(req.Tenant), req.Priority, req.Deadline
	recovered := req.Checkpoint != nil && req.Checkpoint.JobID != 0
	if s.cfg.Tracer != nil {
		if recovered {
			// Crash recovery: re-begin the trace under the checkpoint's
			// original id, so /trace/{job} and event subscribers see one
			// continuous lifecycle across the restart.
			j.tr = s.cfg.Tracer.BeginAt(req.Checkpoint.JobID, j.tenant, req.Label, req.Priority)
			j.tr.Event(trace.EvSubmitted, s.cfg.shard, 0, "recovered")
		} else {
			j.tr = s.cfg.Tracer.Begin(j.tenant, req.Label, req.Priority)
			j.tr.Event(trace.EvSubmitted, s.cfg.shard, 0, "")
		}
	}
	s.initCheckpoint(j, &req)
	if len(req.After) > 0 {
		// Copy the edge list so later caller mutations of the request slice
		// cannot corrupt the verified graph, and drop the request's own
		// reference so depDone's ancestry-unpinning actually frees the
		// chain (nothing reads req.After after this point).
		j.after = append([]*Job(nil), req.After...)
		j.req.After = nil
		// The same QueueDepth backpressure Submit applies through the queue
		// channel, applied to the blocked population: sleeps until a slot
		// frees (an earlier dependent released or canceled), bounded by
		// MaxWait/NoWait like the queued gate. Held locks would block Close,
		// so the wait happens before the read lock.
		if err := s.reserveBlockedSlot(s.cfg.MaxWait, req.NoWait); err != nil {
			s.backlogged.Add(1)
			s.cfg.admission.noteBacklogged(j.tenant)
			if j.tr != nil {
				j.tr.Event(trace.EvShed, s.cfg.shard, 0, "backlogged")
			}
			s.freeJob(j)
			return nil, err
		}
		s.submitMu.RLock()
		if s.closed {
			s.submitMu.RUnlock()
			s.signalBlockedFreed()
			s.freeJob(j)
			return nil, ErrClosed
		}
		s.submitted.Add(1)
		s.fq.account(j.tenant).submitted.Add(1)
		// The blocked gauge is raised under the read lock: Close's
		// write-lock barrier guarantees its blocked drain starts only after
		// observing this job.
		s.blocked.Add(1)
		s.submitMu.RUnlock()
		j.state.Store(int32(Blocked))
		j.tr.Event(trace.EvBlocked, s.cfg.shard, 0, "")
		j.registerDeps() // may release (or cancel) the job immediately
		return j, nil
	}
	if req.N <= 0 {
		s.submitMu.RLock()
		defer s.submitMu.RUnlock()
		if s.closed {
			s.freeJob(j)
			return nil, ErrClosed
		}
		s.submitted.Add(1)
		s.fq.account(j.tenant).submitted.Add(1)
		// Degenerate loop: complete inline, never queued. A reducing job
		// still yields its identity. The trace still passes through the
		// canonical admitted -> dispatched -> joined order.
		j.state.Store(int32(Running))
		j.started = j.submitted
		if req.RBody != nil {
			j.ensurePartials(1)
			j.partials[0].v = req.Identity
		}
		if j.tr != nil {
			j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
			j.tr.Event(trace.EvDispatched, s.cfg.shard, 0, "degenerate")
		}
		j.complete()
		return j, nil
	}
	// Fast path — direct handoff. With nothing queued anywhere, hand the job
	// straight to parked workers from the submitter's own goroutine: no
	// queue-slot reservation, no fair-queue push, no dispatcher round trip.
	// Fairness is safe to bypass exactly when the queue is empty (arbitration
	// orders *waiting* jobs; an empty queue has nothing to order).
	s.submitMu.RLock()
	if !s.closed && s.tryDirectAdmit(j) {
		s.submitMu.RUnlock()
		return j, nil
	}
	s.submitMu.RUnlock()
	// Queued path. QueueDepth backpressure on the queued population: every
	// queued job holds one slot, reserved within MaxWait (or not at all
	// under NoWait). A held lock would block Close, so the wait happens
	// before the read lock.
	if err := s.reserveQueueSlot(s.cfg.MaxWait, req.NoWait); err != nil {
		s.backlogged.Add(1)
		s.cfg.admission.noteBacklogged(j.tenant)
		if j.tr != nil {
			j.tr.Event(trace.EvShed, s.cfg.shard, 0, "backlogged")
		}
		s.freeJob(j)
		return nil, err
	}
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closed {
		s.releaseQueueSlot()
		s.freeJob(j)
		return nil, ErrClosed
	}
	s.submitted.Add(1)
	s.fq.account(j.tenant).submitted.Add(1)
	s.depth.Add(1)
	// Admitted to the intake before the queue push, so the event is always
	// published before the dispatcher can emit the job's dispatched event.
	j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
	s.fq.push(j)
	s.wake()
	return j, nil
}

// traceShed records the lifecycle of a submission rejected before a Job was
// ever allocated: submitted then shed, a complete (terminal) trace.
func (s *Scheduler) traceShed(req *Request, tenant, detail string) {
	if s.cfg.Tracer == nil {
		return
	}
	tr := s.cfg.Tracer.Begin(tenant, req.Label, req.Priority)
	tr.Event(trace.EvSubmitted, s.cfg.shard, 0, "")
	tr.Event(trace.EvShed, s.cfg.shard, 0, detail)
}

// directTeamMax caps how many workers a fast-path submit hands off inline
// (the pop buffer lives on the submitter's stack). Elastic jobs wake the
// dispatcher to grow past it; rigid jobs wanting more take the queued path.
const directTeamMax = 8

// tryDirectAdmit is the submit fast path: when nothing is queued and workers
// are parked, mold a sub-team and perform the release wave on the
// submitter's goroutine. Caller holds submitMu.RLock with closed == false.
// Returns false (job untouched) when the path does not apply; the caller
// then queues normally.
func (s *Scheduler) tryDirectAdmit(j *Job) bool {
	if s.depth.Load() != 0 {
		return false
	}
	elastic := s.elasticFor(j)
	var chunk, maxK, want int
	if elastic {
		chunk = s.chunkFor(j)
		maxK = s.maxTeam(j, chunk)
		want = maxK
		if want > s.p {
			want = s.p
		}
	} else {
		grain := j.req.Grain
		if grain <= 0 {
			grain = 1
		}
		want = s.capTeam(j, grain)
	}
	if want > directTeamMax {
		if !elastic {
			// A rigid sub-team is molded once; do not silently cap it at the
			// buffer size when the dispatcher would assemble a larger one.
			return false
		}
		want = directTeamMax
	}
	var buf [directTeamMax]int
	s.idleMu.Lock()
	n := len(s.idleIDs)
	if n == 0 {
		s.idleMu.Unlock()
		return false
	}
	if n > want {
		n = want
	}
	for i := 0; i < n; i++ {
		buf[i] = s.idleIDs[len(s.idleIDs)-1]
		s.idleIDs = s.idleIDs[:len(s.idleIDs)-1]
	}
	s.idleMu.Unlock()
	s.submitted.Add(1)
	s.fq.account(j.tenant).submitted.Add(1)
	if j.tr != nil {
		j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "direct")
	}
	// The job is not yet published (Submit has not returned), so no Cancel
	// can race this transition: a plain store suffices where the dispatcher's
	// admit needs a CAS.
	j.state.Store(int32(Running))
	s.releaseWave(j, buf[:n], elastic, chunk, maxK)
	if elastic && n < maxK {
		// Under-provisioned: let the dispatcher top the team up (grow) once
		// more workers park. A full team (n == maxK) needs no wake — growth
		// is capped at maxK, and a participant that later peels re-rings
		// the doorbell from parkWorker via the growables gauge.
		s.wake()
	}
	return true
}

// releaseWave moves a job (already accounted, not in any queue) to Running
// on the given workers and performs the fork-side release wave: one buffered
// value send per worker, never waiting for the sub-team to assemble. Shared
// by the dispatcher's admit and the submit fast path.
func (s *Scheduler) releaseWave(j *Job, ids []int, elastic bool, chunk, maxK int) {
	k := len(ids)
	var bar barrier.HalfPair
	if elastic {
		j.initElastic(k, chunk, maxK)
	} else {
		j.workers.Store(int32(k))
		if j.req.RBody != nil {
			j.ensurePartials(k)
		}
		if k > 1 {
			if j.bar == nil || j.barK != k {
				j.bar = barrier.NewCentralized(k)
				j.barK = k
			}
			bar = j.bar
		}
	}
	j.started = time.Now()
	s.running.Add(1)
	j.tr.Event(trace.EvDispatched, s.cfg.shard, k, "")
	for sub := 0; sub < k; sub++ {
		a := assignment{job: j, sub: sub, elastic: elastic}
		if elastic {
			if slot, ok := j.popSlot(); ok {
				a.sub = slot
			}
		} else {
			a.k, a.bar = k, bar
		}
		s.assign[ids[sub]] <- a
	}
	// Publish the job for growth and cross-shard lending only after the
	// release wave: growers drain the slot stack concurrently, and
	// advertising the job earlier could take the initial team's slots.
	if elastic {
		s.growMu.Lock()
		s.growSet[j] = struct{}{}
		s.growables.Store(int32(len(s.growSet)))
		s.growMu.Unlock()
	}
}

// SubmitBatch submits up to len(reqs) independent jobs under one queue-lock
// acquisition, filling out[i] with the job for reqs[i]. It is the amortized
// intake path: one submitMu read-section, one depth update and one fair-queue
// lock admit the whole batch, against one of each per job for Submit. The
// requests must not carry dependencies (After) — batched admission is for
// independent fan-out; use Submit for graph edges. Degenerate requests
// (N <= 0) complete inline as in Submit. out must have at least len(reqs)
// entries; it is the caller's storage, so steady-state batches allocate
// nothing. On error, out[i] is non-nil for exactly the requests that were
// submitted (an invalid request fails the whole batch before any submission;
// ErrClosed or ErrBacklogged can split a batch mid-way — the latter only
// with Config.MaxWait set and a chunk's slot reservation expiring). Batches
// bypass the feasibility and breaker checks (bulk intake; Submit is the
// admission-controlled path), but the bounded slot wait still applies.
func (s *Scheduler) SubmitBatch(reqs []Request, out []*Job) error {
	if len(out) < len(reqs) {
		return errors.New("jobs: SubmitBatch needs len(out) >= len(reqs)")
	}
	for i := range reqs {
		req := &reqs[i]
		switch {
		case req.Body == nil && req.RBody == nil:
			return errors.New("jobs: request needs a Body or an RBody")
		case req.Body != nil && req.RBody != nil:
			return errors.New("jobs: request must set exactly one of Body and RBody")
		case req.RBody != nil && req.Combine == nil:
			return errors.New("jobs: reducing request needs a Combine")
		case len(req.After) > 0:
			return errors.New("jobs: SubmitBatch requests cannot carry After; use Submit for dependencies")
		case req.Checkpoint != nil:
			return errors.New("jobs: SubmitBatch requests cannot carry Checkpoint; use Submit")
		}
	}
	// Chunk by QueueDepth so the slot reservation below can always be
	// satisfied in one piece.
	for start := 0; start < len(reqs); start += s.cfg.QueueDepth {
		end := start + s.cfg.QueueDepth
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := s.submitBatchChunk(reqs[start:end], out[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// submitBatchChunk admits one QueueDepth-bounded slice of a batch.
func (s *Scheduler) submitBatchChunk(reqs []Request, out []*Job) error {
	queued := 0
	for i := range reqs {
		if reqs[i].N > 0 {
			queued++
		}
	}
	if queued > 0 {
		if err := s.reserveQueueSlots(queued, s.cfg.MaxWait); err != nil {
			// The whole chunk is rejected before any job was created; each
			// rejected request counts as one shed.
			s.backlogged.Add(int64(queued))
			for i := range reqs {
				if reqs[i].N > 0 {
					s.cfg.admission.noteBacklogged(tenantName(reqs[i].Tenant))
				}
			}
			return err
		}
	}
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closed {
		if queued > 0 {
			s.releaseQueueSlots(queued)
		}
		return ErrClosed
	}
	now := time.Now()
	for i := range reqs {
		req := reqs[i]
		j := s.newJob()
		j.req = req
		j.s, j.home = s, s
		j.submitted = now
		j.acyclic = true
		j.tenant, j.prio, j.deadline = tenantName(req.Tenant), req.Priority, req.Deadline
		if s.cfg.Tracer != nil {
			j.tr = s.cfg.Tracer.Begin(j.tenant, req.Label, req.Priority)
			j.tr.Event(trace.EvSubmitted, s.cfg.shard, 0, "")
		}
		if req.N <= 0 {
			// Degenerate loop: complete inline, never queued (see submit).
			s.submitted.Add(1)
			s.fq.account(j.tenant).submitted.Add(1)
			j.state.Store(int32(Running))
			j.started = now
			if req.RBody != nil {
				j.ensurePartials(1)
				j.partials[0].v = req.Identity
			}
			if j.tr != nil {
				j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
				j.tr.Event(trace.EvDispatched, s.cfg.shard, 0, "degenerate")
			}
			j.complete()
			out[i] = j
			continue
		}
		if j.tr != nil {
			j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "batch")
		}
		out[i] = j
	}
	if queued > 0 {
		s.submitted.Add(int64(queued))
		s.depth.Add(int64(queued))
		s.fq.pushBatch(out, true)
		s.wake()
	}
	return nil
}

// reserveQueueSlots blocks until n queued slots are available and reserves
// them (n must not exceed QueueDepth; SubmitBatch chunks accordingly),
// bounded by maxWait (<= 0 waits forever, the pre-admission-control
// behavior).
func (s *Scheduler) reserveQueueSlots(n int, maxWait time.Duration) error {
	s.gateMu.Lock()
	if s.queuedHeld+n <= s.cfg.QueueDepth {
		s.queuedHeld += n
		s.gateMu.Unlock()
		return nil
	}
	deadline, timer := s.armGateTimeout(maxWait)
	if timer != nil {
		defer timer.Stop()
	}
	for s.queuedHeld+n > s.cfg.QueueDepth {
		if timer != nil && !time.Now().Before(deadline) {
			s.gateMu.Unlock()
			return s.backloggedError()
		}
		s.gateCond.Wait()
	}
	s.queuedHeld += n
	s.gateMu.Unlock()
	return nil
}

// armGateTimeout starts the gate-wait expiry for one bounded reservation: an
// AfterFunc that broadcasts the gate condition so the waiter (re)checks its
// deadline. Returns a nil timer for maxWait <= 0 (unbounded). The timer
// allocates, but only on the contended path — an uncontended reserve never
// reaches it, keeping the submit fast path allocation-free. The callback
// only broadcasts (it never touches the counts), so a stray late firing is
// harmless, and Stop after the gate wait settles is merely an optimization.
func (s *Scheduler) armGateTimeout(maxWait time.Duration) (time.Time, *time.Timer) {
	if maxWait <= 0 {
		return time.Time{}, nil
	}
	return time.Now().Add(maxWait), time.AfterFunc(maxWait, func() {
		s.gateMu.Lock()
		s.gateCond.Broadcast()
		s.gateMu.Unlock()
	})
}

// releaseQueueSlots returns n queued slots at once.
func (s *Scheduler) releaseQueueSlots(n int) {
	s.gateMu.Lock()
	s.queuedHeld -= n
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
}

// acceptReleased admits a blocked job whose dependencies all completed into
// this scheduler's admission queue. It reports false only when the release
// window has closed (teardown finished draining this scheduler's blocked
// jobs); the caller then falls back to the job's home scheduler, whose
// window is provably still open. Runs on the completing upstream's worker,
// so it must never block on the queue channel.
func (s *Scheduler) acceptReleased(j *Job) bool {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.releaseClosed {
		return false
	}
	home := j.home
	// The release is a migration for snapshot purposes: between raising
	// this scheduler's depth and dropping the home's blocked gauge, a
	// pool-wide Stats walk would count the job both queued and blocked, so
	// the window is bracketed by the same seqlock that guards steals.
	if p := s.cfg.pool; p != nil {
		p.migrateBegin.Add(1)
		defer p.migrateEnd.Add(1)
	}
	// Raise the depth before the state flip so a Cancel racing the fresh
	// Pending state can never drive this scheduler's depth negative, and
	// re-point the job before the flip so that Cancel reads the right
	// scheduler (the CAS publishes both stores). The queued slot is forced
	// (never waited for): this path runs on a completing worker and its
	// population is already bounded by the blocked gate at submission.
	s.depth.Add(1)
	s.forceQueueSlot()
	j.s = s
	if !j.state.CompareAndSwap(int32(Blocked), int32(Pending)) {
		// Canceled while blocked; Cancel already settled the accounting
		// against the home scheduler's blocked gauge.
		s.depth.Add(-1)
		s.releaseQueueSlot()
		return true
	}
	if j.tr != nil {
		j.tr.Event(trace.EvReleased, s.cfg.shard, 0, "")
		j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
	}
	// The fair queue's push is a bounded mutex section, so the release path
	// (running on the completing upstream's worker) never blocks — the old
	// intake channel's full-queue overflow list is gone with the channel.
	s.fq.push(j)
	s.wake()
	home.blocked.Add(-1)
	home.released.Add(1)
	home.signalBlockedFreed()
	return true
}

// acceptResumed admits a suspended job back into this scheduler's admission
// queue (Job.Resume). Structured exactly like acceptReleased: it reports
// false only when the release window has closed; the caller then falls back
// to the job's home scheduler. Runs on the resumer's goroutine and never
// blocks on the queue gate.
func (s *Scheduler) acceptResumed(j *Job) bool {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.releaseClosed {
		return false
	}
	home := j.home
	// Like a release, the resume migrates the job between gauges (the home's
	// suspended set, this scheduler's queue depth), so a pool-wide Stats walk
	// is kept out of the window by the steal seqlock.
	if p := s.cfg.pool; p != nil {
		p.migrateBegin.Add(1)
		defer p.migrateEnd.Add(1)
	}
	s.depth.Add(1)
	s.forceQueueSlot()
	j.s = s
	if !j.state.CompareAndSwap(int32(Suspended), int32(Pending)) {
		// Canceled (or drained by Close) while suspended; that path already
		// settled the suspended gauge and the checkpoint.
		s.depth.Add(-1)
		s.releaseQueueSlot()
		return true
	}
	// Suspended wall time ends here: it must not count as queue wait (the
	// job was parked at the caller's request, not starved by arbitration).
	if at := j.suspendedAt.Swap(0); at != 0 {
		j.suspendedNanos.Add(time.Now().UnixNano() - at)
	}
	home.suspendForget(j)
	if j.tr != nil {
		j.tr.Event(trace.EvResumed, s.cfg.shard, 0, fmt.Sprintf("cursor=%d", j.resumeFrom))
		j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
	}
	s.fq.push(j)
	s.wake()
	return true
}

// initCheckpoint attaches the store snapshot template to a freshly allocated
// job and writes the first checkpoint, before the job can possibly execute
// (submit has not yet queued or dispatched it), so the store never holds a
// stale snapshot of work that already ran. Requests without a Checkpoint —
// or submitted without a tracer, which assigns the ids — stay non-durable.
func (s *Scheduler) initCheckpoint(j *Job, req *Request) {
	if req.Checkpoint == nil {
		return
	}
	c := *req.Checkpoint
	if c.JobID == 0 {
		if j.tr == nil {
			return
		}
		c.JobID = j.tr.ID
	}
	c.Label = req.Label
	c.Tenant, c.Priority, c.Deadline = j.tenant, j.prio, j.deadline
	c.N = req.N
	c.Commutative = req.Commutative
	// Persist dependency edges as upstream trace ids, so recovery can rebuild
	// the graph among jobs that were all unfinished at the crash.
	if len(req.After) > 0 {
		c.After = make([]uint64, 0, len(req.After))
		for _, u := range req.After {
			if id := u.TraceID(); id != 0 {
				c.After = append(c.After, id)
			}
		}
	}
	if c.Cursor > 0 && req.RBody != nil && req.Combine != nil && req.Commutative && !s.cfg.DisableElastic {
		// Recovered mid-space: resume the cursor and the partial fold.
		j.resumeFrom, j.resumeAcc = c.Cursor, c.Acc
	} else {
		// Fresh submission, or a recovered job whose reduction cannot resume
		// mid-space (rigid teams, ordered reducers, plain bodies): restart
		// from iteration 0 and let the checkpoint reflect that.
		c.Cursor, c.Acc = 0, 0
	}
	j.ckptSeed = j.resumeFrom
	j.ckpt = &c
	s.writeCheckpoint(j)
}

// writeCheckpoint puts the job's current snapshot — identity template plus
// the live (cursor, acc) watermark — into the configured store. Failures are
// counted, not fatal: the job keeps running, only its recoverability degrades.
func (s *Scheduler) writeCheckpoint(j *Job) {
	st := s.cfg.Checkpoints
	if st == nil || j.ckpt == nil {
		return
	}
	cp := *j.ckpt
	cp.Cursor = j.resumeFrom
	cp.Acc = j.resumeAcc
	if err := st.Put(cp); err != nil {
		s.ckptFails.Add(1)
		return
	}
	s.ckptWrites.Add(1)
}

// deleteCheckpoint drops the job's snapshot from the store (completion,
// cancellation, failed submission). Idempotent; a nil store or a job that was
// never durable is a no-op.
func (s *Scheduler) deleteCheckpoint(j *Job) {
	st := s.cfg.Checkpoints
	if st == nil || j.ckpt == nil {
		return
	}
	if err := st.Delete(j.ckpt.JobID); err != nil {
		s.ckptFails.Add(1)
	}
}

// noteSuspended registers a job that just parked in the Suspended state:
// gauges, the suspended set (Close's sweep target), the lifecycle event and
// the durable snapshot. Called by Suspend (queued jobs) and by the last
// quiescing participant (running jobs). If Close's sweep already ran, the
// parking side finishes the job's cancellation itself — the sweep can no
// longer see it.
func (s *Scheduler) noteSuspended(j *Job) {
	if j.elastic {
		// A parked job must leave the grow registry now, not at the next lazy
		// prune: a resume re-admits it (which rewrites the elastic state in
		// initElastic), and a grower or sibling lender still finding the old
		// registry entry would race that re-initialization.
		s.growMu.Lock()
		delete(s.growSet, j)
		s.growables.Store(int32(len(s.growSet)))
		s.growMu.Unlock()
	}
	s.suspended.Add(1)
	s.suspendedTotal.Add(1)
	s.suspendMu.Lock()
	closedNow := s.suspendClosed
	if !closedNow {
		s.suspendSet[j] = struct{}{}
	}
	s.suspendMu.Unlock()
	if j.tr != nil {
		j.tr.Event(trace.EvSuspended, s.cfg.shard, 0, fmt.Sprintf("cursor=%d", j.resumeFrom))
	}
	s.writeCheckpoint(j)
	if closedNow {
		s.cancelSuspendedForClose(j)
	}
}

// suspendDrop unregisters a suspended job that was canceled: set, gauge and
// — unlike the Close sweep — its checkpoint, because an explicit Cancel means
// the job must not be recovered.
func (s *Scheduler) suspendDrop(j *Job) {
	s.suspendMu.Lock()
	delete(s.suspendSet, j)
	s.suspendMu.Unlock()
	s.suspended.Add(-1)
	s.deleteCheckpoint(j)
}

// suspendForget unregisters a suspended job that resumed. Its checkpoint
// stays: the job is live again and the snapshot remains its recovery point
// until the next suspension or completion overwrites or deletes it.
func (s *Scheduler) suspendForget(j *Job) {
	s.suspendMu.Lock()
	delete(s.suspendSet, j)
	s.suspendMu.Unlock()
	s.suspended.Add(-1)
	s.resumedTotal.Add(1)
}

// cancelSuspendedForClose cancels one suspended job during teardown,
// deliberately keeping its checkpoint: shutting down with suspended jobs is
// suspend-to-disk, and the next process recovers them from the store. Runs
// before the blocked drain so a Blocked dependent of a suspended upstream
// sees its upstream fail (and cancels) instead of deadlocking the drain.
func (s *Scheduler) cancelSuspendedForClose(j *Job) {
	j.depMu.Lock()
	if !j.state.CompareAndSwap(int32(Suspended), int32(Canceled)) {
		j.depMu.Unlock()
		return
	}
	j.err = ErrCanceled
	deps := j.dependents
	j.dependents = nil
	j.depMu.Unlock()
	s.canceled.Add(1)
	s.suspended.Add(-1)
	if j.tr != nil {
		j.tr.Event(trace.EvCanceled, s.cfg.shard, 0, "shutdown")
	}
	for _, d := range deps {
		d.depDone(ErrCanceled)
	}
	j.finish()
}

// reserveBlockedSlot blocks until the blocked population is below
// QueueDepth and reserves one slot, within maxWait (or not at all under
// noWait). Slots drain as upstreams complete (or cancel), which never
// depends on the caller, so an unbounded wait (maxWait <= 0) always ends.
func (s *Scheduler) reserveBlockedSlot(maxWait time.Duration, noWait bool) error {
	s.gateMu.Lock()
	if s.blockedHeld < s.cfg.QueueDepth {
		s.blockedHeld++
		s.gateMu.Unlock()
		return nil
	}
	if noWait {
		s.gateMu.Unlock()
		return s.backloggedError()
	}
	deadline, timer := s.armGateTimeout(maxWait)
	if timer != nil {
		defer timer.Stop()
	}
	for s.blockedHeld >= s.cfg.QueueDepth {
		if timer != nil && !time.Now().Before(deadline) {
			s.gateMu.Unlock()
			return s.backloggedError()
		}
		s.gateCond.Wait()
	}
	s.blockedHeld++
	s.gateMu.Unlock()
	return nil
}

// signalBlockedFreed returns a blocked slot (the job released, canceled, or
// failed submission) and wakes the gate waiters: submitters parked at the
// cap and a Close draining the blocked population. Broadcast, not Signal —
// a lone wakeup could land on a submitter and starve the closer.
func (s *Scheduler) signalBlockedFreed() {
	s.gateMu.Lock()
	s.blockedHeld--
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
}

// reserveQueueSlot blocks until the queued population is below QueueDepth
// and reserves one slot, within maxWait (or not at all under noWait). Slots
// drain as the dispatcher admits jobs (or as they are canceled), which never
// depends on the caller, so an unbounded wait (maxWait <= 0) always ends.
func (s *Scheduler) reserveQueueSlot(maxWait time.Duration, noWait bool) error {
	s.gateMu.Lock()
	if s.queuedHeld < s.cfg.QueueDepth {
		s.queuedHeld++
		s.gateMu.Unlock()
		return nil
	}
	if noWait {
		s.gateMu.Unlock()
		return s.backloggedError()
	}
	deadline, timer := s.armGateTimeout(maxWait)
	if timer != nil {
		defer timer.Stop()
	}
	for s.queuedHeld >= s.cfg.QueueDepth {
		if timer != nil && !time.Now().Before(deadline) {
			s.gateMu.Unlock()
			return s.backloggedError()
		}
		s.gateCond.Wait()
	}
	s.queuedHeld++
	s.gateMu.Unlock()
	return nil
}

// forceQueueSlot takes a queued slot without waiting, for paths that must
// not block (released dependents, jobs stolen in from a sibling shard). The
// population may transiently exceed QueueDepth; both sources are bounded
// elsewhere (the blocked gate, the victim's own slot count).
func (s *Scheduler) forceQueueSlot() {
	s.gateMu.Lock()
	s.queuedHeld++
	s.gateMu.Unlock()
}

// releaseQueueSlot returns a queued slot (the job was admitted, canceled,
// stolen away, or failed submission) and wakes gate waiters.
func (s *Scheduler) releaseQueueSlot() {
	s.gateMu.Lock()
	s.queuedHeld--
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
}

// teamSize picks the sub-team size a job is admitted on: bounded by the
// scheduler-wide and per-job caps, by the job's size (never fewer than Grain
// iterations per worker), and by the queue pressure — with waiting jobs
// behind this one, each admitted job takes only its fair share of the team
// so concurrent tenants run side by side instead of serialising. Elastic
// jobs later grow past this initial size (up to their caps) when workers
// idle, and shrink below it under queue pressure.
func (s *Scheduler) teamSize(j *Job, waiting int) int {
	grain := j.req.Grain
	if grain <= 0 {
		grain = 1
	}
	k := s.capTeam(j, grain)
	if fair := s.p / (waiting + 1); k > fair {
		k = fair
	}
	if k < 1 {
		k = 1
	}
	return k
}

// capTeam is the shared worker-cap policy: the base worker count clamped by
// the scheduler-wide and per-job caps and by the number of grain-sized
// pieces of the iteration space (a worker beyond one-per-piece could never
// claim work), floored at 1.
func (s *Scheduler) capTeam(j *Job, grain int) int {
	return s.capTeamBase(s.p, j, grain)
}

func (s *Scheduler) capTeamBase(k int, j *Job, grain int) int {
	if s.cfg.MaxWorkersPerJob > 0 && k > s.cfg.MaxWorkersPerJob {
		k = s.cfg.MaxWorkersPerJob
	}
	if j.req.MaxWorkers > 0 && k > j.req.MaxWorkers {
		k = j.req.MaxWorkers
	}
	// Size by the remaining work: a resumed job's team is molded for the
	// unclaimed tail of its space, not the iterations already executed.
	if bySize := (j.req.N - j.resumeFrom + grain - 1) / grain; k > bySize {
		k = bySize
	}
	if k < 1 {
		k = 1
	}
	return k
}

// chunkFor picks the self-scheduling chunk size of an elastic job: the
// request's Grain, the scheduler default, or a heuristic targeting ~8 chunks
// per team member (enough slack for balancing and peeling without measurable
// claim traffic).
func (s *Scheduler) chunkFor(j *Job) int {
	if j.req.Grain > 0 {
		return j.req.Grain
	}
	if s.cfg.DefaultGrain > 0 {
		return s.cfg.DefaultGrain
	}
	chunk := j.req.N / (8 * s.p)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// maxTeam is the hard participant cap of an elastic job: the shared cap
// policy evaluated at the job's actual chunk size. In a sharded pool the
// base is the whole pool's worker count, so sibling shards can lend workers
// past the home shard's own size.
func (s *Scheduler) maxTeam(j *Job, chunk int) int {
	base := s.p
	if s.cfg.hooks != nil && s.cfg.hooks.totalP > base {
		base = s.cfg.hooks.totalP
	}
	return s.capTeamBase(base, j, chunk)
}

// elasticFor reports whether a job takes the elastic path. Non-commutative
// reductions keep the rigid path: their fold order (sub-worker order over
// static blocks) is part of the result.
func (s *Scheduler) elasticFor(j *Job) bool {
	if s.cfg.DisableElastic {
		return false
	}
	return j.req.RBody == nil || j.req.Commutative
}

// dispatch is the arbitration loop. It no longer sits on an intake channel —
// submitters push into the fair queue themselves (or bypass it entirely on
// the direct-handoff fast path) and ring wakeC. Each round the dispatcher:
// prunes the grow registry; admits jobs in policy order (priority class, then
// weighted-fair stride arbitration between tenants, EDF within a class) onto
// parked workers, performing each fork-side release wave (one buffered value
// send per chosen worker; like the paper's release half-barrier, it never
// waits for a sub-team); posts chunk-granular preemption targets on running
// jobs when tenants wait with no idle worker; and — when no tenant is
// waiting — re-molds idle workers onto running elastic jobs that still have
// unclaimed chunks. With steal hooks installed, a dispatcher whose shard has
// gone fully idle pulls whole queued jobs from sibling shards and lends idle
// workers to their running elastic jobs, re-scanning on a timer whose period
// backs off exponentially (up to 64x) while scans come up empty, so an idle
// pool costs timer wakeups, not polling.
func (s *Scheduler) dispatch() {
	defer close(s.dispatcherDone)
	var ws []int // admission scratch: workers popped this round
	var stealTimer *time.Timer
	var stealC <-chan time.Time
	emptyScans := 0
	if s.cfg.hooks != nil {
		// go.mod declares go >= 1.23, so the timer channel is synchronous:
		// Stop and Reset guarantee no stale expiry is ever received, and no
		// drain dance is needed around either.
		stealTimer = time.NewTimer(time.Hour)
		stealTimer.Stop()
		defer stealTimer.Stop()
	}
	for {
		s.pruneGrowSet()
		// Admit in policy order while both queued work and parked workers
		// remain. Workers are popped before the queue pop so a job is never
		// taken out of the fair queue without a team to put it on.
		ws = ws[:0]
		for {
			if len(ws) == 0 {
				ws = s.grabIdle(ws, s.p)
				if len(ws) == 0 {
					break
				}
			}
			j := s.fq.pop()
			if j == nil {
				break
			}
			ws = s.admit(j, ws)
		}
		s.putIdle(ws)
		ws = ws[:0]
		if s.fq.len() > 0 {
			// Tenants are waiting and every worker is busy (the admit loop
			// above drained one or the other): post chunk-granular
			// preemption targets on over-share or out-prioritized running
			// elastic jobs, so workers peel between chunks instead of the
			// waiting jobs sitting out whole completions.
			s.preemptForWaiting()
		} else if s.depth.Load() == 0 {
			// No tenant waits anywhere: lift the preemption constraints so
			// running jobs can use the whole team again.
			s.clearShrinkTargets()
		}
		// The depth guard closes the race with a tenant that was submitted
		// (depth is incremented before the fair-queue push) but not yet
		// pushed: a worker that just peeled for that tenant must not be
		// grown straight back onto the job it left.
		if s.fq.len() == 0 && s.depth.Load() == 0 && s.idleCount() > 0 {
			ws = s.grabIdle(ws[:0], s.p)
			ws = s.grow(ws)
			// Cross-shard work conservation: with local admission, growth
			// and the queue all exhausted but workers still idle, pull work
			// from sibling shards — first a whole queued job (admitted
			// exactly like a local one), else lend the idle workers to a
			// running under-provisioned elastic job over there.
			if s.cfg.hooks != nil && !s.intakeClosed.Load() && len(ws) > 0 && s.depth.Load() == 0 {
				if j := s.cfg.hooks.steal(s); j != nil {
					s.stolen.Add(1)
					emptyScans = 0
					s.fq.push(j)
					s.putIdle(ws)
					continue // restart: admit the stolen job
				}
				if lj := s.cfg.hooks.lend(s); lj != nil {
					emptyScans = 0
					ws = s.lendTo(lj, ws)
				} else if emptyScans < 6 {
					emptyScans++
				}
			}
			s.putIdle(ws)
			ws = ws[:0]
		}
		// Exit once the intake has closed (Close shut the submit and release
		// windows first, so nothing can enter fq anymore) and the queue is
		// drained.
		if s.intakeClosed.Load() && s.fq.len() == 0 {
			break
		}
		// Park. wakeC coalesces all wake reasons (submits, releases, parking
		// workers, Close); with idle workers and siblings to steal from, the
		// timer re-scans at the current backed-off period.
		stealC = nil
		if stealTimer != nil && !s.intakeClosed.Load() && s.idleCount() > 0 {
			stealTimer.Reset(s.cfg.hooks.interval << emptyScans)
			stealC = stealTimer.C
		}
		fired := false
		select {
		case <-s.wakeC:
			emptyScans = 0 // local traffic: scan siblings promptly again
		case <-stealC:
			fired = true
		}
		// Quiesce the armed timer; a stale expiry can never be received
		// after Stop under the go1.23+ timer semantics.
		if stealC != nil && !fired {
			stealTimer.Stop()
		}
	}
}

// pruneGrowSet drops registry entries whose jobs completed or drained their
// cursors (growth lazily discovers both).
func (s *Scheduler) pruneGrowSet() {
	s.growMu.Lock()
	for j := range s.growSet {
		if j.State() != Running || j.cursor.Remaining() == 0 {
			delete(s.growSet, j)
		}
	}
	s.growables.Store(int32(len(s.growSet)))
	s.growMu.Unlock()
}

// clearShrinkTargets lifts every posted preemption constraint.
func (s *Scheduler) clearShrinkTargets() {
	s.growMu.Lock()
	for j := range s.growSet {
		j.shrinkTo.Store(0)
	}
	s.growMu.Unlock()
}

// preemptForWaiting implements the preemption policy: with jobs waiting and
// the team fully busy, every tenant's weighted share of the team is
// computed over the tenants currently queued or running, and each running
// elastic job whose sub-team exceeds its tenant's per-job allowance gets a
// shrink target posted. The allowance is halved when the best waiting job
// out-prioritizes the victim or carries a deadline at risk, so urgent work
// admits within chunks rather than whole job completions. Participants
// observe the target between chunks (see Job.runElastic) and peel — never
// below one participant, so the victim always completes its join wave.
func (s *Scheduler) preemptForWaiting() {
	if s.cfg.DisableFair {
		return
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	if len(s.growSet) == 0 {
		return
	}
	head := s.fq.peek()
	if head == nil {
		return
	}
	risk := s.deadlineRisk(head)
	if s.runningScratch == nil {
		s.runningScratch = make(map[string]int)
		s.sharesScratch = make(map[string]int)
	}
	runningJobs, shares := s.runningScratch, s.sharesScratch
	clear(runningJobs)
	for j := range s.growSet {
		runningJobs[j.tenant]++
	}
	s.fq.shares(s.p, runningJobs, shares)
	for j := range s.growSet {
		allowed := shares[j.tenant] / runningJobs[j.tenant]
		if allowed < 1 {
			allowed = 1
		}
		if (head.prio > j.prio || risk) && allowed > 1 {
			allowed = (allowed + 1) / 2
		}
		target := int32(allowed)
		old := j.shrinkTo.Load()
		if old == target {
			continue
		}
		j.shrinkTo.Store(target)
		// Count a preemption decision only when the new target actually
		// constrains the job below its current sub-team and tightens the
		// previous target, so a steady policy is not re-counted every loop.
		if (old == 0 || old > target) && j.active.Load() > target {
			s.preempted.Add(1)
			s.fq.account(j.tenant).preempted.Add(1)
			j.tr.Event(trace.EvPreempted, s.cfg.shard, allowed, "")
		}
	}
}

// deadlineRisk reports whether a waiting job's deadline is close enough
// that waiting for a running job to finish on its own would likely miss it:
// within twice the recent average job run time (floored at 1ms so a cold
// scheduler still honors tight deadlines).
func (s *Scheduler) deadlineRisk(j *Job) bool {
	if j.deadline.IsZero() {
		return false
	}
	now := time.Now()
	if !j.deadline.After(now) {
		// Already missed: no amount of preemption can save it, so shrinking
		// well-behaved tenants' running jobs for it would be pure harm — a
		// deadline-spamming tenant must not preempt its way through the
		// team with deadlines that were hopeless at submission.
		return false
	}
	horizon := 2 * time.Duration(s.lastRunNanos.Load())
	if horizon < time.Millisecond {
		horizon = time.Millisecond
	}
	return !j.deadline.After(now.Add(horizon))
}

// SetTenantWeight registers (or re-weights) a tenant's fair-share weight;
// weights < 1 are clamped to 1. Safe for concurrent use; takes effect on
// the next admission.
func (s *Scheduler) SetTenantWeight(name string, weight int) {
	s.fq.setWeight(name, weight)
}

// admit molds a sub-team for one popped job from the popped idle workers and
// performs the release wave. It returns the remaining idle set (unchanged
// when the job was canceled while queued).
func (s *Scheduler) admit(j *Job, idle []int) []int {
	if !j.state.CompareAndSwap(int32(Pending), int32(Running)) {
		return idle // canceled while queued; Cancel already adjusted depth
	}
	s.depth.Add(-1)
	s.releaseQueueSlot()
	want := s.teamSize(j, int(s.depth.Load()))
	k := len(idle)
	if k > want {
		k = want
	}
	elastic := s.elasticFor(j)
	var chunk, maxK int
	if elastic {
		chunk = s.chunkFor(j)
		maxK = s.maxTeam(j, chunk)
		if k > maxK {
			k = maxK
		}
	}
	s.releaseWave(j, idle[len(idle)-k:], elastic, chunk, maxK)
	return idle[:len(idle)-k]
}

// grow distributes idle workers round-robin over the running elastic jobs
// that can still use them. Called only when no tenant waits for admission,
// so growth never starves a queued job.
func (s *Scheduler) grow(idle []int) []int {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	for len(idle) > 0 && len(s.growSet) > 0 {
		progressed := false
		for j := range s.growSet {
			if len(idle) == 0 {
				break
			}
			sub, ok := j.tryGrow()
			if !ok {
				continue
			}
			id := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			s.grown.Add(1)
			j.tr.Event(trace.EvGrown, s.cfg.shard, int(j.active.Load()), "")
			s.assign[id] <- assignment{job: j, sub: sub, elastic: true}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return idle
}

// lendTo distributes idle workers onto a sibling shard's running elastic job
// (the cross-shard analogue of grow). The workers execute foreign chunks but
// stay owned by this scheduler: they return to its free list when they leave
// the job, and they peel as soon as this shard has tenants of its own.
func (s *Scheduler) lendTo(j *Job, idle []int) []int {
	for len(idle) > 0 {
		sub, ok := j.tryGrow()
		if !ok {
			break
		}
		id := idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		s.lent.Add(1)
		j.tr.Event(trace.EvLent, s.cfg.shard, int(j.active.Load()), "")
		s.assign[id] <- assignment{job: j, sub: sub, elastic: true}
	}
	return idle
}

// stealQueued removes one job from this scheduler's fair queue on behalf of
// a sibling shard, without admitting it. It returns nil when the queue is
// empty. The pop goes through the same weighted-fair policy as local
// admission, so steals respect tenant weights and priorities: the thief
// takes exactly the job the victim would have admitted next. The caller
// owns the returned job and must migrate it (see Sharded.stealFor); the job
// is still in the Pending state and still counted in this scheduler's
// depth. Jobs still in the intake channel are invisible to steals until the
// victim's dispatcher drains them, which it does ahead of any blocking
// wait.
func (s *Scheduler) stealQueued() *Job {
	return s.fq.pop()
}

// lendableJob returns a running elastic job that still has unclaimed work,
// for a sibling shard to lend workers to, or nil. Entries that completed or
// drained their cursor are dropped lazily.
func (s *Scheduler) lendableJob() *Job {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	for j := range s.growSet {
		if j.State() != Running || j.cursor.Remaining() == 0 {
			delete(s.growSet, j)
			s.growables.Store(int32(len(s.growSet)))
			continue
		}
		return j
	}
	return nil
}

// worker is the body of every team member: park in the mailbox receive until
// someone (the dispatcher or a fast-path submitter) hands over an
// assignment, execute it, park again. The channel receive is the futex-style
// semaphore: a parked worker is a goroutine in gopark, and the hand-off send
// goreadies it directly.
func (s *Scheduler) worker(id int) {
	for a := range s.assign[id] {
		s.busy.Add(1)
		a.run(s)
		s.busy.Add(-1)
		s.parkWorker(id)
	}
}

// recordCompletion updates the aggregate statistics; called by the
// completing worker exactly once per job.
func (s *Scheduler) recordCompletion(j *Job) {
	now := time.Now()
	if j.elastic {
		s.growMu.Lock()
		delete(s.growSet, j)
		s.growables.Store(int32(len(s.growSet)))
		s.growMu.Unlock()
	}
	s.completed.Add(1)
	acct := s.fq.account(j.tenant)
	acct.completed.Add(1)
	if j.req.N > 0 {
		// A recovered job charges only the iterations it actually executed in
		// this process — the watermark inherited from the checkpoint ran (and
		// was counted) before the crash.
		n := int64(j.req.N - j.ckptSeed)
		s.itersDone.Add(n)
		acct.iters.Add(n)
	}
	// Run time spans every stint: the current one plus any accumulated before
	// suspensions. Wait is everything else the job spent between submit and
	// now — minus suspended wall time, which was the caller's pause, not queue
	// starvation, and must not burn SLO budget.
	run := now.Sub(j.started) + time.Duration(j.ranNanos.Load())
	wait := now.Sub(j.submitted) - run - time.Duration(j.suspendedNanos.Load())
	if wait < 0 {
		wait = 0
	}
	acct.waitNanos.Add(int64(wait))
	hadDeadline := !j.deadline.IsZero()
	missed := hadDeadline && now.After(j.deadline)
	if missed {
		s.deadlineMissed.Add(1)
		acct.deadlineMissed.Add(1)
	}
	if hadDeadline {
		acct.deadlineJobs.Add(1)
	}
	if j.workers.Load() > 0 {
		s.running.Add(-1)
	}
	acct.runNanos.Add(int64(run))
	// EWMA of recent run times (new = 3/4 old + 1/4 current) for the
	// deadline-risk horizon; last-writer-wins staleness is acceptable.
	s.lastRunNanos.Store(s.lastRunNanos.Load() - s.lastRunNanos.Load()/4 + int64(run)/4)
	// Total latency excludes suspended time for the same reason wait does.
	s.lat.add((wait + run).Seconds(), run.Seconds())
	// SLO window sample: deadline outcome plus the wait/run pair feeding the
	// per-tenant rolling quantiles (see slo.go).
	dl := sloNoDeadline
	if hadDeadline {
		if missed {
			dl = sloMiss
		} else {
			dl = sloHit
		}
	}
	acct.slo.add(wait.Seconds(), run.Seconds(), dl)
	if hadDeadline {
		// Feed the tenant's circuit breaker (no-op unless armed): the miss
		// EWMA drives open/half-open/close transitions (see admission.go).
		s.cfg.admission.recordOutcome(j.tenant, missed, now)
	}
	if j.tr != nil {
		detail := ""
		if missed {
			detail = "deadline_missed"
		}
		j.tr.Event(trace.EvJoined, s.cfg.shard, int(j.workers.Load()), detail)
	}
	// The job is done: its snapshot must not be recovered.
	s.deleteCheckpoint(j)
}

// Close drains the admission queue, waits for every in-flight job and
// releases the workers. Jobs submitted before Close complete normally —
// including blocked dependents, which are drained before the queue closes
// (provided their upstreams belong to this pool or complete independently);
// Submit fails with ErrClosed afterwards. Close is idempotent and safe to
// call from several goroutines at once: every call returns only after the
// teardown has fully completed, whichever call performed it.
func (s *Scheduler) Close() {
	s.submitMu.Lock()
	if s.closed {
		s.submitMu.Unlock()
		<-s.closeDone
		return
	}
	s.closed = true
	s.submitMu.Unlock()
	// Suspended jobs cancel first (keeping their checkpoints: shutting down
	// with suspended jobs is suspend-to-disk, the next process recovers them
	// from the store). This must precede the blocked drain — a Blocked
	// dependent of a Suspended upstream only unblocks when the upstream turns
	// terminal, and nothing will resume it after closed. The closed flag set
	// under suspendMu hands jobs still quiescing toward the park to
	// noteSuspended's own cancel path, so none can slip past the sweep.
	s.suspendMu.Lock()
	s.suspendClosed = true
	sweep := make([]*Job, 0, len(s.suspendSet))
	for j := range s.suspendSet {
		sweep = append(sweep, j)
	}
	clear(s.suspendSet)
	s.suspendMu.Unlock()
	for _, j := range sweep {
		s.cancelSuspendedForClose(j)
	}
	// Blocked jobs drain next: their upstreams are already queued or
	// running (here or on a sibling shard), so every one of them releases
	// or cancels in bounded time; every retirement broadcasts the gate
	// condition, so the wait is event-driven. blockedHeld reaching zero
	// implies the blocked gauge is zero too (slots retire strictly after
	// the gauge decrement). Only then may the release window and the queue
	// channel close — acceptReleased finishes its enqueue under the read
	// lock, so after the write-lock barrier below no release can race the
	// channel close.
	s.gateMu.Lock()
	for s.blockedHeld > 0 {
		s.gateCond.Wait()
	}
	s.gateMu.Unlock()
	s.submitMu.Lock()
	s.releaseClosed = true
	s.submitMu.Unlock()
	// Both intake windows are shut: tell the dispatcher to drain and exit.
	s.intakeClosed.Store(true)
	s.wake()
	<-s.dispatcherDone
	// Wait for the whole team to park: once all P are on the idle stack, no
	// assignment is in flight and the mailboxes can close.
	s.idleMu.Lock()
	for len(s.idleIDs) < s.p {
		s.idleCond.Wait()
	}
	s.idleIDs = s.idleIDs[:0]
	s.idleMu.Unlock()
	for _, ch := range s.assign {
		close(ch)
	}
	s.team.Wait()
	close(s.closeDone)
}

// Stats is a snapshot of the scheduler's aggregate state. The JSON field
// names are stable (cmd/loopd serves this struct); durations marshal as
// nanoseconds, Go's time.Duration encoding.
type Stats struct {
	Workers     int   `json:"workers"`
	BusyWorkers int   `json:"busy_workers"`
	QueueDepth  int   `json:"queue_depth"`
	Running     int   `json:"running"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Canceled    int64 `json:"canceled"`
	// IterationsDone is the total number of loop iterations completed.
	IterationsDone int64 `json:"iterations_done"`
	// Grown counts workers that joined an already-running job (elastic
	// sub-team growth); Peeled counts workers that left a running job early
	// to serve waiting tenants (elastic shrink).
	Grown  int64 `json:"grown_total"`
	Peeled int64 `json:"peeled_total"`
	// Stolen counts whole queued jobs this scheduler pulled from sibling
	// shards; Lent counts workers this scheduler lent to sibling shards'
	// running elastic jobs. Both are zero outside a Sharded pool.
	Stolen int64 `json:"stolen_total"`
	Lent   int64 `json:"lent_total"`
	// BlockedDepth is the number of jobs currently parked in the Blocked
	// state waiting for dependencies — deliberately not part of QueueDepth,
	// which only counts jobs eligible for admission. Released counts blocked
	// jobs whose last upstream's join wave moved them into an admission
	// queue; DepCanceled counts blocked jobs canceled by upstream
	// cancellation propagating down the dependency graph (these also count
	// in Canceled).
	BlockedDepth int64 `json:"blocked_depth"`
	Released     int64 `json:"released_total"`
	DepCanceled  int64 `json:"dep_canceled_total"`
	// Preempted counts preemption decisions: shrink targets the dispatcher
	// posted against running elastic jobs to serve waiting tenants.
	// DeadlineMissed counts jobs that completed after their requested
	// deadline.
	Preempted      int64 `json:"preempted_total"`
	DeadlineMissed int64 `json:"deadline_missed_total"`
	// ShedTotal counts submissions rejected by admission control (see
	// admission.go): the sum of InfeasibleTotal (deadline unmeetable at
	// submit), BackloggedTotal (queue-slot wait expired or NoWait on a full
	// queue) and breaker rejections. On a Sharded pool's merged totals the
	// breaker sheds — which happen before routing and belong to no shard —
	// are included here and absent from the per-shard snapshots.
	ShedTotal       int64 `json:"shed_total"`
	InfeasibleTotal int64 `json:"infeasible_total"`
	BackloggedTotal int64 `json:"backlogged_total"`
	// SuspendedDepth is the number of jobs currently parked in the Suspended
	// state — like BlockedDepth, outside QueueDepth. SuspendedTotal and
	// ResumedTotal count lifecycle transitions into and out of it.
	// CheckpointWrites and CheckpointFailures count snapshot puts against the
	// configured store (both zero without one).
	SuspendedDepth     int64 `json:"suspended_depth"`
	SuspendedTotal     int64 `json:"suspended_total"`
	ResumedTotal       int64 `json:"resumed_total"`
	CheckpointWrites   int64 `json:"checkpoint_writes_total"`
	CheckpointFailures int64 `json:"checkpoint_failures_total"`
	// Tenants is the per-tenant accounting: weights, queued depth, served
	// jobs/iterations, preemptions, deadline misses and cumulative
	// admission-wait time, keyed by tenant name (jobs submitted without a
	// tenant are charged to "default"). Nil until the first submission or
	// weight registration.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Latency quantiles (submission to completion) over the recent window.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Run quantiles (admission to completion) over the recent window.
	RunP50 time.Duration `json:"run_p50_ns"`
	RunP95 time.Duration `json:"run_p95_ns"`
	RunP99 time.Duration `json:"run_p99_ns"`
	// LatencySamples is the number of completions in the window.
	LatencySamples int `json:"latency_samples"`
	// LatencySumSeconds and RunSumSeconds are cumulative (not windowed)
	// totals over all completions, matching Completed as the count — the
	// _sum/_count pair of a Prometheus summary.
	LatencySumSeconds float64 `json:"latency_sum_seconds"`
	RunSumSeconds     float64 `json:"run_sum_seconds"`
}

// Stats returns a snapshot of queue depth, occupancy and latency
// percentiles.
func (s *Scheduler) Stats() Stats {
	st, _, _ := s.statsWindows()
	if s.cfg.pool == nil {
		// Standalone: this scheduler IS the pool, so merge the admission
		// layer's per-tenant shed counters and breaker states here. Shards
		// of a Sharded pool leave it to the pool-wide snapshot — the state
		// is shared and would otherwise be counted once per shard.
		st.Tenants = s.cfg.admission.fillTenantStats(st.Tenants)
		st.ShedTotal += s.cfg.admission.breakerShed.Load()
	}
	return st
}

// statsWindows builds the snapshot and also returns the latency windows it
// was computed from, so Sharded.Stats can merge pool-wide quantiles from the
// very same instant instead of re-snapshotting the rings.
func (s *Scheduler) statsWindows() (Stats, []float64, []float64) {
	st := Stats{
		Workers:            s.p,
		BusyWorkers:        int(s.busy.Load()),
		QueueDepth:         int(s.depth.Load()),
		Running:            int(s.running.Load()),
		Submitted:          s.submitted.Load(),
		Completed:          s.completed.Load(),
		Canceled:           s.canceled.Load(),
		IterationsDone:     s.itersDone.Load(),
		Grown:              s.grown.Load(),
		Peeled:             s.peeled.Load(),
		Stolen:             s.stolen.Load(),
		Lent:               s.lent.Load(),
		BlockedDepth:       s.blocked.Load(),
		Released:           s.released.Load(),
		DepCanceled:        s.depCanceled.Load(),
		Preempted:          s.preempted.Load(),
		DeadlineMissed:     s.deadlineMissed.Load(),
		ShedTotal:          s.infeasible.Load() + s.backlogged.Load(),
		InfeasibleTotal:    s.infeasible.Load(),
		BackloggedTotal:    s.backlogged.Load(),
		SuspendedDepth:     s.suspended.Load(),
		SuspendedTotal:     s.suspendedTotal.Load(),
		ResumedTotal:       s.resumedTotal.Load(),
		CheckpointWrites:   s.ckptWrites.Load(),
		CheckpointFailures: s.ckptFails.Load(),
		Tenants:            s.fq.tenantsSnapshot(s.cfg.SLOTarget),
	}
	tot, run, totSum, runSum := s.lat.snapshot()
	st.LatencySamples = len(tot)
	st.LatencySumSeconds, st.RunSumSeconds = totSum, runSum
	if len(tot) > 0 {
		q := stats.Quantiles(tot, 0.5, 0.95, 0.99)
		st.LatencyP50, st.LatencyP95, st.LatencyP99 = secs(q[0]), secs(q[1]), secs(q[2])
		q = stats.Quantiles(run, 0.5, 0.95, 0.99)
		st.RunP50, st.RunP95, st.RunP99 = secs(q[0]), secs(q[1]), secs(q[2])
	}
	return st, tot, run
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// latRing is a fixed-size window of recent job latencies plus cumulative
// sums over every completion (the _sum series of a Prometheus summary).
type latRing struct {
	mu     sync.Mutex
	tot    []float64 // submission -> completion, seconds
	run    []float64 // admission -> completion, seconds
	totSum float64
	runSum float64
	idx    int
	n      int
}

func (r *latRing) init(capacity int) {
	r.tot = make([]float64, capacity)
	r.run = make([]float64, capacity)
}

func (r *latRing) add(tot, run float64) {
	r.mu.Lock()
	r.tot[r.idx] = tot
	r.run[r.idx] = run
	r.totSum += tot
	r.runSum += run
	r.idx = (r.idx + 1) % len(r.tot)
	if r.n < len(r.tot) {
		r.n++
	}
	r.mu.Unlock()
}

func (r *latRing) snapshot() (tot, run []float64, totSum, runSum float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tot = append([]float64(nil), r.tot[:r.n]...)
	run = append([]float64(nil), r.run[:r.n]...)
	return tot, run, r.totSum, r.runSum
}
