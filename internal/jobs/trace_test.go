package jobs_test

// Lifecycle tracing tests: the hooks threaded through submit → enqueue →
// dispatch → grow/peel/preempt/steal → join must deliver every transition in
// causal order (asserted by schedtest.AssertEventOrder), file finished traces
// in the collector, and stay completely inert without a Tracer.

import (
	"errors"
	"testing"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/schedtest"
	"loopsched/internal/trace"
)

// collectEvents subscribes to tr with a continuously drained buffer and
// returns a stop function yielding every event delivered before stop.
func collectEvents(t *testing.T, tr *trace.Tracer) (stop func() []trace.StreamEvent) {
	t.Helper()
	sub := tr.Subscribe(1<<14, "", 0)
	var events []trace.StreamEvent
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case ev := <-sub.Events():
				events = append(events, ev)
			case <-quit:
				// The run has drained; empty whatever is still buffered.
				for {
					select {
					case ev := <-sub.Events():
						events = append(events, ev)
					default:
						return
					}
				}
			}
		}
	}()
	return func() []trace.StreamEvent {
		close(quit)
		<-done
		sub.Close()
		if sub.Dropped() != 0 {
			t.Fatalf("event collector dropped %d events; grow the buffer", sub.Dropped())
		}
		return events
	}
}

func TestTraceLifecycleSimpleJob(t *testing.T) {
	tr := trace.NewTracer(64)
	s := jobs.New(jobs.Config{Workers: 2, Tracer: tr})
	defer s.Close()

	j, err := s.Submit(jobs.Request{N: 128, Tenant: "acme", Label: "simple", Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	jt := j.Trace()
	if jt == nil {
		t.Fatal("traced scheduler returned a nil Job.Trace")
	}
	if !jt.Finished() {
		t.Fatal("trace not finished after Wait")
	}
	if got := tr.Trace(jt.ID); got != jt {
		t.Fatalf("collector lookup = %v, want the job's trace", got)
	}
	evs := jt.Events()
	types := make([]string, len(evs))
	for i, ev := range evs {
		types[i] = ev.Type
	}
	want := []string{"submitted", "admitted", "dispatched", "joined"}
	for i, typ := range want {
		if i >= len(types) || types[i] != typ {
			t.Fatalf("event types = %v, want prefix %v", types, want)
		}
	}
	if len(jt.Waves()) == 0 {
		t.Fatal("no chunk-wave stints recorded")
	}
	schedtest.AssertEventOrder(t, evs)

	doc := jt.OTLP("test")
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	if names["job"] != 1 || names["queued"] != 1 || names["run"] != 1 || names["wave"] == 0 {
		t.Fatalf("span names = %v, want one job/queued/run and >= 1 wave", names)
	}
}

func TestTraceCanceledJob(t *testing.T) {
	tr := trace.NewTracer(64)
	s := jobs.New(jobs.Config{Workers: 1, Tracer: tr})
	defer s.Close()

	// Hold the lone worker so a second submission stays queued and cancelable.
	release := make(chan struct{})
	hold, err := s.Submit(jobs.Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(jobs.Request{N: 64, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	// The hold job may still be queued for an instant; retry until the cancel
	// targets a Pending victim behind the running hold.
	if !victim.Cancel() {
		t.Fatal("victim not cancelable while the worker is held")
	}
	close(release)
	if _, err := hold.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Wait(); !errors.Is(err, jobs.ErrCanceled) {
		t.Fatalf("canceled job Wait err = %v", err)
	}
	jt := victim.Trace()
	if !jt.Finished() {
		t.Fatal("canceled trace not finished")
	}
	evs := jt.Events()
	last := evs[len(evs)-1]
	if last.Type != "canceled" {
		t.Fatalf("last event = %q, want canceled", last.Type)
	}
	schedtest.AssertEventOrder(t, evs)
	if tr.Trace(jt.ID) == nil {
		t.Fatal("canceled trace not filed in the collector")
	}
}

func TestTraceUntracedSchedulerIsInert(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 2})
	defer s.Close()
	j, err := s.Submit(jobs.Request{N: 32, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if j.Trace() != nil {
		t.Fatal("untraced scheduler produced a trace handle")
	}
}

func TestInvariantTracedScheduler(t *testing.T) {
	// The standard op stream (tenants, priorities, deadlines, cancels, DAGs)
	// against a traced scheduler: every delivered event stream must satisfy
	// the causal-order invariants.
	tr := trace.NewTracer(4096)
	stop := collectEvents(t, tr)
	s := jobs.New(jobs.Config{Workers: 4, Tracer: tr})
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed + 9}, 4, schedulerDrain(s))
	s.Close()
	evs := stop()
	if len(evs) == 0 {
		t.Fatal("traced invariant run delivered no events")
	}
	schedtest.AssertEventOrder(t, evs)
}

func TestInvariantTracedShardedWithStealing(t *testing.T) {
	// The hostile sharded configuration (1-worker shards, near-zero steal
	// interval) with tracing on: stolen/lent/peeled churn must still deliver
	// causally ordered streams, under -race.
	tr := trace.NewTracer(4096)
	stop := collectEvents(t, tr)
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config:        jobs.Config{Workers: 4, Tracer: tr},
		Shards:        4,
		StealInterval: 20 * time.Microsecond,
	})
	schedtest.RunJobInvariants(t, p, schedtest.InvariantOptions{Seed: seed + 10, Tenants: 8}, 4, shardedDrain(p))
	p.Close()
	evs := stop()
	schedtest.AssertEventOrder(t, evs)
}
