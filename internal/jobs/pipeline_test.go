package jobs

// DAG dependency tests: Blocked-state accounting, release ordering across
// join waves, cancellation propagation, cycle rejection, and cross-shard
// release. White-box (package jobs) so the cycle test can craft a graph the
// public API cannot produce.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// gate returns a request whose body parks on ch until it is closed, plus the
// channel. It occupies exactly one worker.
func gate() (Request, chan struct{}) {
	ch := make(chan struct{})
	return Request{N: 1, Body: func(w, lo, hi int) { <-ch }, Label: "gate"}, ch
}

func mustSubmit(t *testing.T, r JobRunner, req Request) *Job {
	t.Helper()
	j, err := r.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// JobRunner mirrors schedtest.JobRunner without the import cycle.
type JobRunner interface {
	Submit(Request) (*Job, error)
}

func TestDependentStartsAfterUpstreamJoin(t *testing.T) {
	s := testScheduler(t, 4, Config{})
	const n = 50000
	var upCovered atomic.Int64
	up := mustSubmit(t, s, Request{N: n, Grain: 64, Body: func(w, lo, hi int) {
		upCovered.Add(int64(hi - lo))
	}})
	var sawPartialUpstream atomic.Bool
	var depRan atomic.Int64
	dep, err := s.Submit(Request{N: 128, After: []*Job{up}, Body: func(w, lo, hi int) {
		if upCovered.Load() != n {
			sawPartialUpstream.Store(true)
		}
		depRan.Add(int64(hi - lo))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Wait(); err != nil {
		t.Fatal(err)
	}
	if sawPartialUpstream.Load() {
		t.Error("dependent observed a partially executed upstream: released before the join wave completed")
	}
	if depRan.Load() != 128 {
		t.Errorf("dependent covered %d of 128 iterations", depRan.Load())
	}
	if up.State() != Done {
		t.Errorf("upstream state = %v after dependent completed, want done", up.State())
	}
}

func TestBlockedJobsAreOutsideQueueDepth(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	upReq, release := gate()
	ups := []*Job{mustSubmit(t, s, upReq), mustSubmit(t, s, upReq)}
	dep := mustSubmit(t, s, Request{N: 64, After: ups, Body: func(w, lo, hi int) {}})

	// Both workers are parked in the gates, so the dependent must be
	// Blocked and must not appear in the admission queue depth. Wait for the
	// gates to be admitted first: until then they legitimately count.
	waitFor(t, "gates to be admitted", func() bool {
		return ups[0].State() == Running && ups[1].State() == Running
	})
	waitFor(t, "dependent to park in Blocked", func() bool { return dep.State() == Blocked })
	st := s.Stats()
	if st.BlockedDepth != 1 {
		t.Errorf("BlockedDepth = %d, want 1", st.BlockedDepth)
	}
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d, want 0 (blocked jobs must not count)", st.QueueDepth)
	}

	close(release)
	if _, err := dep.Wait(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.BlockedDepth != 0 {
		t.Errorf("BlockedDepth = %d after completion, want 0", st.BlockedDepth)
	}
	if st.Released != 1 {
		t.Errorf("Released = %d, want 1", st.Released)
	}
}

func TestFanOutFanIn(t *testing.T) {
	s := testScheduler(t, 4, Config{})
	const width, n = 5, 4096
	var produced atomic.Int64
	var fanOut []*Job
	src := mustSubmit(t, s, Request{N: n, Body: func(w, lo, hi int) {
		produced.Add(int64(hi - lo))
	}})
	var transformed atomic.Int64
	for i := 0; i < width; i++ {
		fanOut = append(fanOut, mustSubmit(t, s, Request{N: n, After: []*Job{src}, Body: func(w, lo, hi int) {
			transformed.Add(int64(hi - lo))
		}}))
	}
	sink, err := s.Submit(Request{
		N: n, After: fanOut, Commutative: true,
		Combine: func(a, b float64) float64 { return a + b },
		RBody: func(w, lo, hi int, acc float64) float64 {
			if transformed.Load() != width*n {
				t.Error("sink started before the whole fan-out stage completed")
			}
			for i := lo; i < hi; i++ {
				acc += float64(i)
			}
			return acc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sink.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * float64(n-1) / 2; v != want {
		t.Errorf("sink reduction = %v, want %v", v, want)
	}
	if produced.Load() != n {
		t.Errorf("source covered %d of %d iterations", produced.Load(), n)
	}
}

func TestUpstreamCancelPropagates(t *testing.T) {
	s := testScheduler(t, 1, Config{})
	occupyReq, release := gate()
	occupy := mustSubmit(t, s, occupyReq)
	defer func() {
		close(release)
		occupy.Wait()
	}()

	// The only worker is parked, so the upstream stays Pending in the queue
	// and Cancel deterministically wins admission.
	up := mustSubmit(t, s, Request{N: 64, Body: func(w, lo, hi int) {}})
	var ran atomic.Bool
	mid := mustSubmit(t, s, Request{N: 64, After: []*Job{up}, Body: func(w, lo, hi int) { ran.Store(true) }})
	tail := mustSubmit(t, s, Request{N: 64, After: []*Job{mid}, Body: func(w, lo, hi int) { ran.Store(true) }})

	if !up.Cancel() {
		t.Fatal("Cancel on a queued upstream returned false")
	}
	for i, j := range []*Job{mid, tail} {
		_, err := j.Wait()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("stage %d: err = %v, want ErrCanceled", i+1, err)
		}
	}
	// The tail's error wraps the chain: both the sentinel and the upstream's
	// own error are reachable.
	_, tailErr := tail.Wait()
	_, midErr := mid.Wait()
	if !errors.Is(tailErr, ErrCanceled) || midErr == tailErr {
		t.Errorf("tail err %q should wrap the mid stage's cancellation %q", tailErr, midErr)
	}
	if ran.Load() {
		t.Error("a canceled dependent ran its body")
	}
	st := s.Stats()
	if st.DepCanceled != 2 {
		t.Errorf("DepCanceled = %d, want 2 (mid and tail)", st.DepCanceled)
	}
	if st.BlockedDepth != 0 {
		t.Errorf("BlockedDepth = %d after propagation, want 0 (leaked blocked dependents)", st.BlockedDepth)
	}
	if st.Canceled != 3 {
		t.Errorf("Canceled = %d, want 3 (explicit + two propagated)", st.Canceled)
	}
}

func TestCancelBlockedJobDirectly(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	upReq, release := gate()
	up := mustSubmit(t, s, upReq)
	dep := mustSubmit(t, s, Request{N: 64, After: []*Job{up}, Body: func(w, lo, hi int) {}})
	waitFor(t, "dependent to park in Blocked", func() bool { return dep.State() == Blocked })
	if !dep.Cancel() {
		t.Fatal("Cancel on a blocked job returned false")
	}
	if _, err := dep.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	close(release)
	if _, err := up.Wait(); err != nil {
		t.Fatalf("upstream must complete normally, got %v", err)
	}
	st := s.Stats()
	if st.BlockedDepth != 0 || st.Released != 0 {
		t.Errorf("BlockedDepth = %d, Released = %d; want 0, 0", st.BlockedDepth, st.Released)
	}
}

func TestDependentOnTerminalUpstreams(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	done := mustSubmit(t, s, Request{N: 16, Body: func(w, lo, hi int) {}})
	if _, err := done.Wait(); err != nil {
		t.Fatal(err)
	}
	// All upstreams already Done at submit: the job releases immediately.
	dep := mustSubmit(t, s, Request{N: 16, After: []*Job{done}, Body: func(w, lo, hi int) {}})
	if _, err := dep.Wait(); err != nil {
		t.Fatal(err)
	}

	// An already-canceled upstream cancels the dependent at submit.
	gateReq, release := gate()
	g1, g2 := mustSubmit(t, s, gateReq), mustSubmit(t, s, gateReq)
	queued := mustSubmit(t, s, Request{N: 16, Body: func(w, lo, hi int) {}})
	if !queued.Cancel() {
		t.Fatal("cancel of queued upstream failed")
	}
	late, err := s.Submit(Request{N: 16, After: []*Job{queued}, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := late.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("dependent of a terminal canceled upstream: err = %v, want ErrCanceled", err)
	}
	close(release)
	g1.Wait()
	g2.Wait()
}

func TestDegenerateDependentCompletesAtRelease(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	upReq, release := gate()
	up := mustSubmit(t, s, upReq)
	// N == 0 with dependencies: still waits for the upstream, then completes
	// inline with its identity.
	dep := mustSubmit(t, s, Request{
		N: 0, After: []*Job{up}, Identity: 42,
		Combine: func(a, b float64) float64 { return a + b },
		RBody:   func(w, lo, hi int, acc float64) float64 { return acc },
	})
	waitFor(t, "dependent to park in Blocked", func() bool { return dep.State() == Blocked })
	close(release)
	v, err := dep.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("degenerate reducing dependent = %v, want identity 42", v)
	}
}

func TestSubmitRejectsBadAfter(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	if _, err := s.Submit(Request{N: 8, Body: func(w, lo, hi int) {}, After: []*Job{nil}}); err == nil {
		t.Error("nil upstream accepted")
	}

	// A cycle cannot be built through the public API (After only accepts
	// already-submitted jobs), so craft one directly and verify Submit's
	// defensive DFS rejects any request whose upstream graph contains it.
	a := &Job{}
	b := &Job{}
	a.after = []*Job{b}
	b.after = []*Job{a}
	a.state.Store(int32(Blocked))
	b.state.Store(int32(Blocked))
	if _, err := s.Submit(Request{N: 8, Body: func(w, lo, hi int) {}, After: []*Job{a}}); !errors.Is(err, ErrCycle) {
		t.Errorf("err = %v, want ErrCycle", err)
	}
}

func TestShardedReleaseRoutesAcrossShards(t *testing.T) {
	p := NewSharded(ShardedConfig{
		Config:        Config{Workers: 4},
		Shards:        2,
		StealInterval: 50 * time.Microsecond,
	})
	defer p.Close()

	// A diamond per round, submitted from one goroutine: source on a pinned
	// shard, fan-out released wherever the router likes, verified sink.
	const rounds = 20
	for r := 0; r < rounds; r++ {
		src := mustSubmit(t, p, Request{N: 512, Body: func(w, lo, hi int) {}})
		var mids []*Job
		for i := 0; i < 3; i++ {
			mids = append(mids, mustSubmit(t, p, Request{N: 512, After: []*Job{src}, Body: func(w, lo, hi int) {}}))
		}
		sink := mustSubmit(t, p, Request{
			N: 1024, After: mids, Commutative: true,
			Combine: func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += float64(i)
				}
				return acc
			},
		})
		v, err := sink.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(1024) * 1023 / 2; v != want {
			t.Fatalf("round %d: sink = %v, want %v", r, v, want)
		}
	}
	st := p.Stats()
	if st.Total.Released != 4*rounds {
		t.Errorf("Released = %d, want %d", st.Total.Released, 4*rounds)
	}
	if st.Total.BlockedDepth != 0 {
		t.Errorf("BlockedDepth = %d at quiescence, want 0", st.Total.BlockedDepth)
	}
}

func TestCloseDrainsBlockedDependents(t *testing.T) {
	s := New(Config{Workers: 2})
	upReq, release := gate()
	up := mustSubmit(t, s, upReq)
	var ran atomic.Int64
	dep := mustSubmit(t, s, Request{N: 256, After: []*Job{up}, Body: func(w, lo, hi int) {
		ran.Add(int64(hi - lo))
	}})

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// Close must wait for the blocked dependent, not tear down under it.
	select {
	case <-closed:
		t.Fatal("Close returned while a blocked dependent was still waiting")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if _, err := dep.Wait(); err != nil {
		t.Fatalf("dependent across Close: %v", err)
	}
	if ran.Load() != 256 {
		t.Errorf("dependent covered %d of 256 iterations", ran.Load())
	}
}

func TestBlockedSubmissionsGetQueueDepthBackpressure(t *testing.T) {
	// A pipeline fan-out cannot park unbounded memory behind one upstream:
	// the blocked population is capped by QueueDepth, and a submitter over
	// the cap sleeps until a slot frees.
	s := testScheduler(t, 2, Config{QueueDepth: 4})
	upReq, release := gate()
	up := mustSubmit(t, s, upReq)
	for i := 0; i < 4; i++ {
		mustSubmit(t, s, Request{N: 16, After: []*Job{up}, Body: func(w, lo, hi int) {}})
	}
	extraDone := make(chan *Job)
	go func() {
		extraDone <- mustSubmit(t, s, Request{N: 16, After: []*Job{up}, Body: func(w, lo, hi int) {}})
	}()
	select {
	case <-extraDone:
		t.Fatal("5th blocked submission returned with the blocked population at the QueueDepth cap")
	case <-time.After(20 * time.Millisecond):
	}
	close(release) // upstream completes, dependents release, the gate opens
	var extra *Job
	select {
	case extra = <-extraDone:
	case <-time.After(5 * time.Second):
		t.Fatal("gated submission never unblocked after the upstream completed")
	}
	if _, err := extra.Wait(); err != nil {
		t.Fatal(err)
	}
}
