// Package jobs multiplexes many concurrent parallel-loop jobs onto one
// persistent worker team: the multi-tenant counterpart of the single-master
// fine-grain scheduler in internal/core.
//
// The paper's half-barrier insight — workers are dedicated and idle between
// loops, so a loop needs only one release wave at the fork and one join wave
// at the completion — is applied here *across* jobs instead of within one
// master's loop stream. Each admitted job runs on a moldable sub-team of
// k <= P workers: the dispatcher hands the job to k idle workers in a single
// release wave (a channel send per worker; the dispatcher never waits for
// the sub-team to assemble), each worker executes its static block of the
// iteration space, and the sub-team completes through the join half-barrier
// of internal/barrier — non-root workers announce arrival and return to the
// idle pool immediately, the sub-root folds any reduction views in worker
// order (exactly k-1 combines) and publishes the result. No job ever pays a
// full barrier, and jobs coordinate only through the admission queue: there
// is no global synchronisation on the execution hot path.
//
// The sub-team size k is chosen at admission from the queue depth and the
// job's size (see Scheduler.teamSize), so a lone job spreads across the
// machine while a burst of jobs degrades gracefully to one worker each.
package jobs

import (
	"errors"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/iterspace"
	"loopsched/internal/sched"
)

// Errors returned by Job.Wait.
var (
	// ErrCanceled reports that the job was canceled before it started.
	ErrCanceled = errors.New("jobs: job canceled")
	// ErrClosed reports that the scheduler was closed before the job could be
	// submitted.
	ErrClosed = errors.New("jobs: scheduler closed")
)

// State is the lifecycle state of a Job.
type State int32

// Job states.
const (
	// Pending: submitted, waiting in the admission queue.
	Pending State = iota
	// Running: admitted; a sub-team is executing the loop.
	Running
	// Done: completed (result and error are final).
	Done
	// Canceled: canceled before admission; the loop never ran.
	Canceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Canceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Request describes one parallel-loop job. Exactly one of Body and RBody
// must be set.
type Request struct {
	// N is the iteration space [0, N). Non-positive N completes immediately.
	N int
	// Body is a plain loop body. The worker index it receives is the
	// *sub-team* index in [0, k) where k is the number of workers the job was
	// molded onto — the same contract as sched.Body, with P replaced by k.
	Body sched.Body
	// RBody, Identity and Combine describe a scalar reducing loop: per-worker
	// partials start at Identity and are folded with Combine in sub-worker
	// order inside the join wave (k-1 combines, non-commutative safe).
	RBody    sched.ReduceBody
	Identity float64
	Combine  func(a, b float64) float64
	// MaxWorkers caps the sub-team size for this job; <= 0 means no cap
	// beyond the scheduler's own limits.
	MaxWorkers int
	// Grain is the minimum number of iterations per worker worth the
	// synchronisation; the sub-team never exceeds ceil(N/Grain) workers.
	// <= 0 selects 1.
	Grain int
	// Label tags the job in statistics (for example the workload name).
	Label string
}

// paddedPartial is one sub-worker's reduction view on its own cache line.
type paddedPartial struct {
	v float64
	_ [120]byte
}

// Job is one submitted parallel loop. Its methods are safe for concurrent
// use.
type Job struct {
	req   Request
	state atomic.Int32
	done  chan struct{}

	// Written by the completing worker (or by Cancel) strictly before done is
	// closed; read only after <-done.
	result float64
	err    error

	// workers is the molded sub-team size, atomic because submitters may
	// poll it while the dispatcher admits the job.
	workers atomic.Int32

	// partials holds the per-sub-worker reduction views for reducing jobs.
	partials []paddedPartial

	submitted time.Time
	started   time.Time

	s *Scheduler
}

// State returns the job's current state.
func (j *Job) State() State { return State(j.state.Load()) }

// Done returns a channel closed when the job completes or is canceled.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns the reduction result (0
// for non-reducing jobs) and any error (ErrCanceled if the job was canceled
// before it started).
func (j *Job) Wait() (float64, error) {
	<-j.done
	return j.result, j.err
}

// Cancel cancels the job if it has not been admitted yet and reports whether
// it did. A running or completed job is not interrupted: cancellation is an
// admission-queue operation, the execution hot path is never arbitrated.
func (j *Job) Cancel() bool {
	if !j.state.CompareAndSwap(int32(Pending), int32(Canceled)) {
		return false
	}
	j.err = ErrCanceled
	close(j.done)
	if j.s != nil {
		j.s.canceled.Add(1)
	}
	return true
}

// Workers returns the sub-team size the job ran on (0 until it is admitted).
func (j *Job) Workers() int { return int(j.workers.Load()) }

// Label returns the request's label.
func (j *Job) Label() string { return j.req.Label }

// assignment is the work descriptor the dispatcher hands to one worker: its
// sub-team index, the sub-team size and the sub-team's join half-barrier.
type assignment struct {
	job *Job
	sub int
	k   int
	// bar is the sub-team's half-barrier; nil when k == 1.
	bar barrier.HalfPair
}

// run executes this worker's share of the job and participates in the join
// wave. It is called on the jobs-scheduler worker that received the
// assignment.
func (a *assignment) run() {
	j := a.job
	r := iterspace.Block(j.req.N, a.k, a.sub)
	if j.req.RBody != nil {
		acc := j.req.Identity
		if !r.Empty() {
			acc = j.req.RBody(a.sub, r.Begin, r.End, acc)
		}
		j.partials[a.sub].v = acc
	} else if !r.Empty() {
		j.req.Body(a.sub, r.Begin, r.End)
	}
	if a.k == 1 {
		j.complete()
		return
	}
	// Join wave: non-root sub-workers announce arrival and return to the
	// idle pool without waiting for the rest of the sub-team (the half the
	// half-barrier keeps); the sub-root collects arrivals in sub-worker order,
	// folding reduction views as they arrive.
	a.bar.JoinCombine(a.sub, j.combineInto())
	if a.sub == 0 {
		j.complete()
	}
}

// combineInto returns the join-wave view fold for reducing jobs, or nil.
func (j *Job) combineInto() func(into, from int) {
	if j.req.RBody == nil {
		return nil
	}
	return func(into, from int) {
		j.partials[into].v = j.req.Combine(j.partials[into].v, j.partials[from].v)
	}
}

// complete publishes the job's result. Called exactly once, by the sub-root
// (or by the scheduler for degenerate jobs).
func (j *Job) complete() {
	if j.req.RBody != nil {
		j.result = j.partials[0].v
	}
	j.state.Store(int32(Done))
	if j.s != nil {
		j.s.recordCompletion(j)
	}
	close(j.done)
}
