// Package jobs multiplexes many concurrent parallel-loop jobs onto one
// persistent worker team: the multi-tenant counterpart of the single-master
// fine-grain scheduler in internal/core.
//
// The paper's half-barrier insight — workers are dedicated and idle between
// loops, so a loop needs only one release wave at the fork and one join wave
// at the completion — is applied here *across* jobs instead of within one
// master's loop stream. Each admitted job runs on a sub-team of k <= P
// workers: the dispatcher hands the job to k idle workers in a single release
// wave (a channel send per worker; the dispatcher never waits for the
// sub-team to assemble), and the sub-team completes through a join wave over
// exactly the workers that participated. No job ever pays a full barrier, and
// jobs coordinate only through the admission queue: on the execution hot path
// a worker's only shared-state operation is one atomic chunk claim.
//
// # Elastic sub-teams
//
// Unlike the paper's dedicated teams, sub-teams here are *elastic*:
//
//   - Within a job, workers self-schedule grain-sized chunks from a per-job
//     atomic cursor instead of executing one static block each, so a
//     sub-worker that finishes early takes more chunks instead of idling
//     behind a straggler (skewed bodies no longer leave k-1 workers idle).
//   - A sub-team can grow after admission: an idle worker joins a running
//     job that still has unclaimed work, bounded by the job's worker caps.
//   - A sub-team shrinks under queue pressure: a worker that finishes a
//     chunk while other tenants wait in the admission queue peels off (never
//     the last participant) and returns to the dispatcher, which re-molds it
//     onto a waiting job. This fixes the convoy effect — a lone job that
//     grabbed all P workers yields them chunk-by-chunk to a later burst.
//
// The join stays a half-barrier-shaped wave over the workers that actually
// participated: leaving workers fold their partial (for reducing jobs) and
// decrement the participant count without waiting for anyone; the last one
// out completes the job. Reducing jobs take the elastic path only when the
// request declares its combine Commutative — partials are then folded in
// arrival order. Non-commutative reductions keep the rigid path: a static
// block per sub-worker, a fixed sub-team and a join half-barrier that folds
// views in worker order (exactly k-1 combines), bit-for-bit the same result
// as the synchronous scheduler.
//
// # Weighted-fair multi-tenancy
//
// Admission is arbitrated by a policy layer (see fair.go) instead of a
// single FIFO: per-tenant accounts with weights are served by stride-based
// weighted fair queuing, job priorities form strict admission classes with
// an earliest-deadline-first tie-break, and the dispatcher preempts
// over-share or lower-priority running jobs at chunk granularity by asking
// their elastic sub-teams to shrink between chunks (never below one
// participant). The policy runs only on the per-job admission path; the
// per-chunk execution path stays a single atomic claim.
package jobs

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/iterspace"
	"loopsched/internal/sched"
	"loopsched/internal/trace"
)

// Errors returned by Job.Wait and Submit.
var (
	// ErrCanceled reports that the job was canceled before it started —
	// explicitly through Cancel, or by propagation from a canceled upstream
	// dependency (errors.Is matches either way; a propagated cancellation
	// also wraps the upstream's error).
	ErrCanceled = errors.New("jobs: job canceled")
	// ErrClosed reports that the scheduler was closed before the job could be
	// submitted.
	ErrClosed = errors.New("jobs: scheduler closed")
	// ErrCycle reports that Request.After closes a dependency cycle. Cycles
	// cannot be built through well-typed use (After only accepts handles of
	// already-submitted jobs, so every edge points backwards in submission
	// time), but Submit verifies the upstream graph anyway.
	ErrCycle = errors.New("jobs: dependency cycle")
	// ErrReleased reports that a Job handle was used after Release returned
	// its runtime objects to the scheduler's freelist. Wait detects the reuse
	// through the job's generation counter; the result of a released job is
	// gone by contract.
	ErrReleased = errors.New("jobs: job handle released")
)

// State is the lifecycle state of a Job.
type State int32

// Job states.
const (
	// Pending: submitted, waiting in the admission queue.
	Pending State = iota
	// Running: admitted; a sub-team is executing the loop.
	Running
	// Done: completed (result and error are final).
	Done
	// Canceled: canceled before admission; the loop never ran.
	Canceled
	// Blocked: submitted with unfinished dependencies (Request.After); the
	// job sits outside every admission queue — it does not count toward the
	// queue depth fair shares are computed from, and it can never be stolen —
	// until its last upstream's join wave releases it into Pending.
	Blocked
	// Suspended: taken out of service by Suspend with its progress captured
	// (the cursor watermark and, for commutative reductions, the partial
	// accumulator). Like Blocked it sits outside every admission queue —
	// invisible to fair-share sizing, unstealable — until Resume re-admits it
	// from the watermark, or crash recovery re-submits it from the checkpoint
	// store under the same job id.
	Suspended
)

// stateStealing is an internal, transient state: the job has been pulled out
// of one shard's admission queue by a sibling shard and is mid-migration. It
// is never observable through State (which reports it as Pending); its only
// purpose is to exclude Cancel while the job's home scheduler is being
// re-pointed, so depth accounting lands on exactly one shard.
const stateStealing int32 = 100

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Canceled:
		return "canceled"
	case Blocked:
		return "blocked"
	case Suspended:
		return "suspended"
	default:
		return "unknown"
	}
}

// Request describes one parallel-loop job. Exactly one of Body and RBody
// must be set.
type Request struct {
	// N is the iteration space [0, N). Non-positive N completes immediately.
	N int
	// Body is a plain loop body. The worker index it receives is the
	// *sub-team* index: a dense id in [0, K) where K never exceeds the job's
	// worker caps (and never exceeds the team size P). Under elastic
	// execution a sub-worker may be called with several disjoint chunks, in
	// increasing iteration order per sub-worker.
	Body sched.Body
	// RBody, Identity and Combine describe a scalar reducing loop: per-worker
	// partials start at Identity and are folded with Combine. Unless
	// Commutative is set, the fold happens in sub-worker order inside the
	// join wave (k-1 combines, non-commutative safe) over static blocks.
	RBody    sched.ReduceBody
	Identity float64
	Combine  func(a, b float64) float64
	// Commutative declares Combine commutative (and Identity a true
	// identity), allowing the runtime to execute the reduction elastically:
	// chunked self-scheduling with partials folded in arrival order. Leave
	// it false for ordered (non-commutative) reductions.
	Commutative bool
	// MaxWorkers caps the sub-team size for this job; <= 0 means no cap
	// beyond the scheduler's own limits.
	MaxWorkers int
	// Grain is the self-scheduling chunk size in iterations — the smallest
	// unit of work worth one atomic claim. It is also the minimum number of
	// iterations per worker: the sub-team never exceeds ceil(N/Grain)
	// workers. <= 0 selects the scheduler's default heuristic.
	Grain int
	// Tenant names the account the job is charged to; the empty string
	// selects the shared "default" account. Tenants with registered weights
	// (Config.TenantWeights, Scheduler.SetTenantWeight) are served in
	// proportion to those weights under saturation; unknown tenants are
	// created on first use with weight 1.
	Tenant string
	// Priority orders admission strictly: among waiting jobs, a higher
	// priority is always admitted first, across all tenants (weights
	// arbitrate only within a priority class). The dispatcher also shrinks
	// running lower-priority elastic jobs, chunk by chunk, to free workers
	// for a waiting higher-priority job. 0 is the default class; negative
	// priorities yield to everything else.
	Priority int
	// Deadline is the completion deadline used as the admission tie-break
	// within a priority class (earliest deadline first) and as the
	// preemption trigger when the deadline is at risk. The zero time means
	// no deadline. A missed deadline does not fail the job; it increments
	// the scheduler's and tenant's deadline-missed counters.
	Deadline time.Time
	// After lists jobs that must complete before this one may start. The job
	// is held in the Blocked state — outside every admission queue, invisible
	// to fair-share sizing and to cross-shard stealing — and the last
	// upstream's join wave releases it into Pending. In a Sharded pool the
	// released job is admitted to the least-loaded shard at release time. A
	// canceled upstream cancels the job too: its Wait returns an error
	// matching ErrCanceled that wraps the upstream's error. Upstreams may
	// belong to any scheduler (completion is all that is observed), entries
	// must be non-nil, and the edges must stay acyclic (Submit returns
	// ErrCycle otherwise).
	After []*Job
	// NoWait makes Submit fail fast with ErrBacklogged when the admission
	// queue is full instead of blocking for a slot (see admission.go): the
	// per-request analogue of Config.MaxWait with a zero wait. It only
	// affects the slot wait; SubmitBatch ignores it (batches are bounded by
	// Config.MaxWait as a whole).
	NoWait bool
	// Checkpoint, when non-nil and the scheduler has a Config.Checkpoints
	// store, makes the job durable: a progress snapshot is stored at
	// admission and at every suspension and deleted at completion or
	// cancellation. The caller fills the identity fields (Workload, Params)
	// so a restart can rebuild the request by name; a snapshot recovered
	// from a store (JobID != 0) keeps its original job id, and one with
	// Cursor > 0 resumes an elastic job from that watermark instead of
	// iteration 0 (rigid jobs — ordered reductions, DisableElastic — restart
	// from 0; a rigid re-execution still yields the identical result for
	// reducing bodies, but a plain Body runs its early iterations again).
	// Requires a Tracer (job ids come from it); SubmitBatch rejects it.
	Checkpoint *Checkpoint
	// Label tags the job in statistics (for example the workload name).
	Label string
}

// paddedPartial is one sub-worker's reduction view on its own cache line.
type paddedPartial struct {
	v float64
	_ [120]byte
}

// Job is one submitted parallel loop. Its methods are safe for concurrent
// use.
//
// Jobs are pooled: Submit draws them from the scheduler's freelist and an
// explicit owner-side Release (optional — unreleased jobs are simply
// garbage-collected) recycles them. The generation counter arbitrates
// recycled handles: every field of a recycled job belongs to its new
// generation, and a late Wait on a stale handle reports ErrReleased instead
// of another job's result.
type Job struct {
	req   Request
	state atomic.Int32

	// gen is bumped first thing at recycle; Wait/Trace snapshot it on entry
	// and re-check after reading the terminal fields (a seqlock in miniature)
	// so a handle held across Release can never observe the next
	// generation's data as its own.
	gen atomic.Uint64

	// waitMu guards the terminal flag, the lazily created done channel and
	// (by the publication order below) result/err: the completing worker (or
	// Cancel) stores result/err strictly before raising terminal, and waiters
	// read them strictly after observing it.
	waitMu   sync.Mutex
	waitCond sync.Cond
	terminal bool
	lazyDone chan struct{}

	result float64
	err    error

	// workers is the peak sub-team size (for rigid jobs, the molded size k),
	// atomic because submitters may poll it while the job runs.
	workers atomic.Int32

	// partials holds the per-sub-worker reduction views for rigid reducing
	// jobs; the backing array is recycled with the job.
	partials []paddedPartial

	// bar/barK cache the rigid join half-barrier across generations: a
	// recycled job admitted on the same sub-team size reuses the barrier
	// (episodes are epoch-numbered, so reuse needs no reset).
	bar  barrier.HalfPair
	barK int

	// Elastic execution state (zero for rigid jobs).
	elastic bool
	// cursor hands out grain-sized chunks of [0, N); one atomic add per
	// claim is the hot path's only shared-state operation. Padded: every
	// participant hammers the claim cursor, and the fields after it (active,
	// the slot stack) are written on the grow/peel/leave paths — false
	// sharing here taxes every chunk claim.
	cursor iterspace.Chunker
	_      [104]byte
	// active counts the participants currently executing chunks. Growth
	// CASes it up from >= 1 only; the decrement to 0 completes the job, so a
	// completed job can never be resurrected. On its own line: grow/lend CAS
	// storms must not invalidate the cursor's line.
	active atomic.Int32
	_      [124]byte
	// slotMu guards freeSubs, the stack of free dense sub-worker ids in
	// [0, maxK); the backing array is recycled with the job.
	slotMu   sync.Mutex
	freeSubs []int
	maxK     int
	// redMu guards acc, the shared accumulator elastic reducing jobs fold
	// into at leave time (once per participant, not per chunk).
	redMu sync.Mutex
	acc   float64

	// Admission-policy state: the normalized tenant account name, the
	// priority class and deadline copied out of the request, and the
	// fair-queue submission sequence (assigned under the queue lock).
	tenant   string
	prio     int
	deadline time.Time
	seq      uint64
	// shrinkTo is the dispatcher's preemption request: a participant count
	// the running elastic job should shrink toward, observed by participants
	// between chunks. 0 means no constraint. Posted only by the job's own
	// dispatcher; cleared when its queue drains.
	shrinkTo atomic.Int32

	// Suspend/checkpoint state. suspendReq asks running participants to
	// quiesce at their next chunk boundary (checked alongside shrinkTo; the
	// no-suspend hot path pays one relaxed load). The remaining fields are
	// written only at quiescent points — submit, the suspended park, resume —
	// and published by the state transitions around them.
	suspendReq     atomic.Bool
	suspendedAt    atomic.Int64 // unix nanos of the park, for wait accounting
	suspendedNanos atomic.Int64 // cumulative suspended wall time
	ranNanos       atomic.Int64 // run time accumulated over earlier stints
	resumeFrom     int          // cursor watermark the next dispatch starts at
	resumeAcc      float64      // partial reduction folded over [0, resumeFrom)
	ckptSeed       int          // watermark inherited at submit (crash recovery)
	ckpt           *Checkpoint  // store snapshot template; nil = not durable

	submitted time.Time
	started   time.Time

	// s is the scheduler currently responsible for the job: the admitting
	// shard's. It is re-pointed when a queued job is stolen and when a
	// blocked job is released onto another shard, always before the job
	// becomes observable in the new state.
	s *Scheduler

	// Dependency (DAG) state. after and acyclic are set at submit and
	// immutable afterwards; home is the submitting scheduler (the blocked
	// accounting never moves, unlike s); pool routes the release in a
	// sharded runtime (nil for standalone schedulers and pinned jobs).
	after   []*Job
	acyclic bool
	home    *Scheduler
	pool    *Sharded
	// tr is the job's lifecycle trace, set at submit when the scheduler has a
	// Tracer and nil otherwise; every hook is nil-safe, so untraced jobs pay
	// one nil check per transition.
	tr *trace.JobTrace

	// waits counts upstreams not yet terminal, plus one registration
	// sentinel so a fast upstream cannot release the job mid-registration.
	waits atomic.Int32
	// depMu guards dependents (blocked jobs waiting on this one, drained at
	// completion or cancellation) and depErr (the first failed upstream).
	depMu      sync.Mutex
	dependents []*Job
	depErr     error
}

// State returns the job's current state.
func (j *Job) State() State {
	s := j.state.Load()
	if s == stateStealing {
		return Pending
	}
	return State(s)
}

// Done returns a channel closed when the job completes or is canceled. The
// channel is created on first call (Wait does not need it), so jobs that are
// only ever Waited on stay allocation-free.
func (j *Job) Done() <-chan struct{} {
	j.waitMu.Lock()
	defer j.waitMu.Unlock()
	if j.lazyDone == nil {
		j.lazyDone = make(chan struct{})
		if j.terminal {
			close(j.lazyDone)
		}
	}
	return j.lazyDone
}

// finish publishes the terminal transition: result/err are already stored,
// so raise the flag, close the lazily created done channel if anyone asked
// for one, and wake the waiters.
func (j *Job) finish() {
	j.waitMu.Lock()
	j.terminal = true
	if j.lazyDone != nil {
		close(j.lazyDone)
	}
	j.waitMu.Unlock()
	j.waitCond.Broadcast()
}

// Wait blocks until the job completes and returns the reduction result (0
// for non-reducing jobs) and any error (ErrCanceled if the job was canceled
// before it started, ErrReleased if the handle was Released concurrently).
func (j *Job) Wait() (float64, error) {
	gen := j.gen.Load()
	j.waitMu.Lock()
	for !j.terminal {
		if j.gen.Load() != gen {
			j.waitMu.Unlock()
			return 0, ErrReleased
		}
		j.waitCond.Wait()
	}
	result, err := j.result, j.err
	j.waitMu.Unlock()
	if j.gen.Load() != gen {
		// The handle's owner Released (and possibly resubmitted) the job
		// while this stale waiter was between the terminal check and the
		// field reads: the values above may belong to the next generation.
		return 0, ErrReleased
	}
	return result, err
}

// Release returns the job's runtime objects (the Job itself, its partials
// and slot arrays, its cached barrier) to its home scheduler's freelist for
// reuse by a later Submit. It is the owner side of the pooled-object
// contract: call it only once, only after the job is terminal (Wait/Done
// returned), and do not touch the handle — nor pass it to After — afterwards.
// A non-terminal or repeated Release is a safe no-op; concurrent stale
// Wait/Trace callers observe ErrReleased/nil via the generation counter
// rather than another job's data. Releasing is optional: unreleased jobs are
// garbage-collected as before.
func (j *Job) Release() {
	// Only completed jobs are recyclable. A job canceled from Pending is
	// still referenced by the fair queue until the dispatcher (or a
	// stealing sibling) pops it and drops it on the failed admission CAS;
	// recycling it here would hand the freelist a job the heap still
	// compares and the dispatcher could re-admit after the field reset.
	// Canceled handles simply stay garbage-collected.
	if State(j.state.Load()) != Done {
		return
	}
	j.waitMu.Lock()
	ok := j.terminal
	if ok {
		// Claim the release under waitMu so two racing Release calls cannot
		// both recycle (terminal flips false for the next generation only
		// inside freeJob, before the freelist push publishes the job).
		j.terminal = false
	}
	j.waitMu.Unlock()
	if !ok {
		return
	}
	if home := j.home; home != nil {
		home.freeJob(j)
	}
}

// Cancel cancels the job if it has not been admitted yet and reports whether
// it did. A running or completed job is not interrupted: cancellation is an
// admission-queue operation, the execution hot path is never arbitrated.
// Canceling a job also cancels its not-yet-started dependents: their Wait
// errors match ErrCanceled and wrap this job's error.
func (j *Job) Cancel() bool {
	// The whole terminal transition — state flip, error publication and the
	// dependent drain — happens under depMu, so a concurrent addDependent
	// either registers before the drain (and is notified by it) or observes
	// the Canceled state with the error already written; it can never see
	// Canceled with a nil error and release its dependent as if the upstream
	// had succeeded.
	j.depMu.Lock()
	blocked := j.state.CompareAndSwap(int32(Blocked), int32(Canceled))
	suspended := !blocked && j.state.CompareAndSwap(int32(Suspended), int32(Canceled))
	if !blocked && !suspended && !j.state.CompareAndSwap(int32(Pending), int32(Canceled)) {
		j.depMu.Unlock()
		return false
	}
	j.err = ErrCanceled
	deps := j.dependents
	j.dependents = nil
	j.depMu.Unlock()
	j.finish()
	if blocked {
		// Blocked jobs sit outside every queue: only the home scheduler's
		// blocked gauge — never the queue depth — needs adjusting.
		if j.home != nil {
			j.home.canceled.Add(1)
			j.home.blocked.Add(-1)
			j.home.signalBlockedFreed()
			j.home.deleteCheckpoint(j)
		}
	} else if suspended {
		// Suspended jobs sit outside every queue too: retire the home's
		// suspended registry entry and drop the checkpoint — an explicitly
		// canceled job must not be recovered.
		if j.home != nil {
			j.home.canceled.Add(1)
			j.home.suspendDrop(j)
		}
	} else if j.s != nil {
		j.s.canceled.Add(1)
		// The job still sits in the admission queue, but it no longer waits
		// for workers: take it out of the depth other tenants' fair share is
		// computed from. The dispatcher skips the depth decrement for jobs
		// whose Pending->Running CAS fails, so exactly one side accounts for
		// each job.
		j.s.depth.Add(-1)
		j.s.releaseQueueSlot()
		if j.home != nil {
			j.home.deleteCheckpoint(j)
		}
	}
	if j.tr != nil {
		sh := 0
		if (blocked || suspended) && j.home != nil {
			sh = j.home.cfg.shard
		} else if !blocked && !suspended && j.s != nil {
			sh = j.s.cfg.shard
		}
		j.tr.Event(trace.EvCanceled, sh, 0, "")
	}
	for _, d := range deps {
		d.depDone(ErrCanceled)
	}
	return true
}

// Suspend takes the job out of service with its progress captured, so it can
// be resumed later — in this process via Resume, or (with a checkpoint store
// configured) by a later process from the store. A Pending job is removed
// from its admission queue immediately; a Running elastic job is asked to
// quiesce and parks in the Suspended state once every participant has
// finished its current chunk (poll State for the park). A Running rigid job
// — ordered reduction, or DisableElastic — ignores the request and completes:
// its static blocks have no chunk boundary to cut at.
//
// Suspend reports whether the suspension is in effect or accepted; false
// means the job was blocked, terminal, or canceled in the window. Like
// Blocked, a Suspended job sits outside every queue: it holds no queue slot,
// does not count toward the fair-share depth, and cannot be stolen.
func (j *Job) Suspend() bool {
	for {
		switch st := j.state.Load(); st {
		case int32(Pending):
			s := j.s
			if s == nil {
				return false
			}
			// Take the queue entry out FIRST: the dispatcher and stealing
			// siblings always pop before their state CAS, so owning the entry
			// leaves Cancel as the only remaining contender for the state.
			if !s.fq.remove(j) {
				// Pending but not in s's queue: mid-pop, mid-steal, or a
				// stale queue pointer. Every such window ends with another
				// goroutine's next step (admit CAS, steal re-push), so
				// re-read the state and retry.
				runtime.Gosched()
				continue
			}
			if !j.state.CompareAndSwap(int32(Pending), int32(Suspended)) {
				// Canceled in the window. Cancel already settled the depth
				// and slot accounting; dropping the removed entry here is
				// exactly what the dispatcher's failed admission CAS would
				// have done on pop.
				return false
			}
			s.depth.Add(-1)
			s.releaseQueueSlot()
			j.suspendedAt.Store(time.Now().UnixNano())
			if home := j.home; home != nil {
				home.noteSuspended(j)
			}
			return true
		case int32(Running):
			// Post the quiesce request; participants observe it between
			// chunks (see runElastic) and the last one out parks the job.
			// Idempotent: re-suspending while quiescing is accepted too.
			j.suspendReq.Store(true)
			return true
		case int32(Suspended):
			return true
		case stateStealing:
			runtime.Gosched()
		default:
			return false
		}
	}
}

// Resume re-admits a Suspended job: it re-enters admission (on the
// least-loaded shard of a sharded pool, like a released dependent) and, once
// dispatched, claims chunks starting at the watermark its suspension
// captured, with the partial reduction restored. The job keeps its identity:
// same handle, same job id, one continuous trace. Resume reports false when
// the job is not currently Suspended (a quiescing Running job has not parked
// yet — poll State) or the pool is shutting down.
func (j *Job) Resume() bool {
	if State(j.state.Load()) != Suspended {
		return false
	}
	if j.pool != nil {
		if target := j.pool.routeFor(j.tenant); target != j.home && target.acceptResumed(j) {
			return true
		}
	}
	if j.home == nil {
		return false
	}
	return j.home.acceptResumed(j)
}

// parkSuspended is called by the last quiescing participant (active hit 0):
// every participant has folded its partial and left, so the claim watermark
// and the shared accumulator are exact. A suspension that raced the cursor's
// exhaustion completes the job instead — every iteration already executed.
func (j *Job) parkSuspended() {
	if j.cursor.Remaining() == 0 {
		j.suspendReq.Store(false)
		j.complete()
		return
	}
	s := j.s
	now := time.Now()
	j.resumeFrom = j.cursor.Claimed()
	j.resumeAcc = j.acc
	j.ranNanos.Add(int64(now.Sub(j.started)))
	j.suspendedAt.Store(now.UnixNano())
	j.suspendReq.Store(false)
	if s != nil {
		s.growMu.Lock()
		delete(s.growSet, j)
		s.growables.Store(int32(len(s.growSet)))
		s.growMu.Unlock()
	}
	j.state.Store(int32(Suspended))
	if s != nil {
		s.running.Add(-1)
	}
	if home := j.home; home != nil {
		home.noteSuspended(j)
	}
}

// Workers returns the peak sub-team size the job has run on (0 until it is
// admitted). Elastic jobs may grow and shrink while running; the peak is the
// largest number of simultaneous participants.
func (j *Job) Workers() int { return int(j.workers.Load()) }

// Trace returns the job's lifecycle trace handle, or nil when the scheduler
// runs without a Tracer. The handle's ID is the job id used by the event
// stream and the trace collector.
func (j *Job) Trace() *trace.JobTrace { return j.tr }

// TraceID returns the tracer-assigned job id, stable across suspend/resume
// and crash recovery, or 0 when the scheduler runs without a Tracer.
func (j *Job) TraceID() uint64 {
	if j.tr == nil {
		return 0
	}
	return j.tr.ID
}

// Label returns the request's label.
func (j *Job) Label() string { return j.req.Label }

// initElastic prepares the elastic execution state for a job about to be
// admitted on k initial workers, with the given chunk size and participant
// cap. Called by the admitting goroutine strictly before the release wave.
// The slot stack's backing array is reused across the job's generations.
//
// The whole re-initialization runs under slotMu, paired with tryGrow holding
// it across its claim: a sibling shard's lender that fetched this job before
// a suspend can call tryGrow concurrently with the resume's re-admission,
// and without the lock it could pop a slot from the dying generation's stack
// and then join the fresh one with a duplicate sub id (or read the cursor
// and elastic fields mid-rewrite). Under the lock it observes either the old
// generation (active is 0, the claim fails) or the fully initialized new one.
func (j *Job) initElastic(k, chunk, maxK int) {
	j.slotMu.Lock()
	if !j.elastic {
		// Only ever flips false→true, and the first admission happens before
		// the job is visible to any grower; re-admissions skip the write so
		// lock-free fast-path readers (runElastic participants) never race it.
		j.elastic = true
	}
	// A resumed (or checkpoint-recovered) job claims from its watermark: the
	// prefix [0, resumeFrom) already executed exactly once and its partial is
	// restored below, so nothing re-runs and nothing double-folds.
	j.cursor.InitAt(j.resumeFrom, j.req.N, chunk)
	j.maxK = maxK
	if cap(j.freeSubs) < maxK {
		j.freeSubs = make([]int, maxK)
	} else {
		j.freeSubs = j.freeSubs[:maxK]
	}
	for i := range j.freeSubs {
		// Stack order: the release wave pops dense ids 0, 1, 2, ... so rigid
		// and elastic sub ids agree for the initial team.
		j.freeSubs[i] = maxK - 1 - i
	}
	if j.resumeFrom > 0 {
		j.acc = j.resumeAcc
	} else {
		j.acc = j.req.Identity
	}
	j.active.Store(int32(k))
	j.workers.Store(int32(k))
	j.slotMu.Unlock()
}

// popSlot takes a free dense sub-worker id, if one remains.
func (j *Job) popSlot() (int, bool) {
	j.slotMu.Lock()
	n := len(j.freeSubs)
	if n == 0 {
		j.slotMu.Unlock()
		return 0, false
	}
	sub := j.freeSubs[n-1]
	j.freeSubs = j.freeSubs[:n-1]
	j.slotMu.Unlock()
	return sub, true
}

// pushSlot returns a dense sub-worker id to the free stack. The append never
// grows the backing array: at most maxK ids exist and initElastic sized the
// stack for all of them.
func (j *Job) pushSlot(sub int) {
	j.slotMu.Lock()
	j.freeSubs = append(j.freeSubs, sub)
	j.slotMu.Unlock()
}

// ensurePartials sizes the per-sub-worker reduction views for k workers,
// reusing the backing array across the job's generations. Entries are not
// zeroed: every view in [0, k) is unconditionally written before it is read
// (rigid participants store their block's partial even for an empty block).
func (j *Job) ensurePartials(k int) {
	if cap(j.partials) < k {
		j.partials = make([]paddedPartial, k)
	} else {
		j.partials = j.partials[:k]
	}
}

// tryGrow attempts to reserve a participant slot on a running elastic job.
// It returns the dense sub-worker id to use, or ok == false when the job is
// at its cap, has no unclaimed work, or is completing. The CAS loop joins
// only while at least one participant remains, so a completed job is never
// resurrected.
//
// The whole claim — prologue reads, slot pop, active CAS — holds slotMu,
// pairing with initElastic (see its comment): a caller whose job reference
// straddles a suspend/resume cycle either observes the parked generation
// (active 0 → the slot goes straight back onto the same stack) or the fully
// re-initialized one — never a slot popped from a dead generation's stack
// carried into the fresh one as a duplicate sub id.
func (j *Job) tryGrow() (sub int, ok bool) {
	j.slotMu.Lock()
	defer j.slotMu.Unlock()
	if !j.elastic || j.suspendReq.Load() || j.cursor.Remaining() == 0 {
		return 0, false
	}
	n := len(j.freeSubs)
	if n == 0 {
		return 0, false // at the participant cap
	}
	sub = j.freeSubs[n-1]
	j.freeSubs = j.freeSubs[:n-1]
	for {
		a := j.active.Load()
		if a < 1 {
			// Completing, completed or parked; hand the slot back.
			j.freeSubs = append(j.freeSubs, sub)
			return 0, false
		}
		if j.active.CompareAndSwap(a, a+1) {
			// Atomic max: growers race here with participants' lock-free
			// leave path, so a stale check-then-store could lose the true
			// peak.
			for {
				w := j.workers.Load()
				if a+1 <= w || j.workers.CompareAndSwap(w, a+1) {
					break
				}
			}
			return sub, true
		}
	}
}

// tryPeel decrements the participant count only if another participant
// remains, so a job is never abandoned with unclaimed work. It reports
// whether the caller may stop taking chunks.
func (j *Job) tryPeel() bool {
	for {
		a := j.active.Load()
		if a <= 1 {
			return false
		}
		if j.active.CompareAndSwap(a, a-1) {
			return true
		}
	}
}

// runElastic is one participant's share of an elastic job: claim chunks from
// the cursor until the space is exhausted or queue pressure asks the worker
// to peel off. The leave protocol folds the participant's partial *before*
// the active decrement, so the completing participant observes every fold.
//
// home is the scheduler the executing worker belongs to. It equals j.s except
// for a worker lent across shards, which peels when either side is under
// queue pressure: the job's home shard (the usual convoy fix) or its own
// shard (the lender wants its worker back for local tenants).
func (j *Job) runElastic(home *Scheduler, sub int) {
	reducing := j.req.RBody != nil
	for {
		acc := j.req.Identity
		touched := false
		peel := false
		suspend := false
		for {
			// Quiesce for a suspension before claiming: a chunk, once
			// claimed, is always executed, so checking here keeps the claim
			// watermark exact — every claimed iteration has run when the
			// last participant parks the job.
			if j.suspendReq.Load() {
				suspend = true
				break
			}
			r, ok := j.cursor.Next()
			if !ok {
				break
			}
			if reducing {
				acc = j.req.RBody(sub, r.Begin, r.End, acc)
			} else {
				j.req.Body(sub, r.Begin, r.End)
			}
			touched = true
			// Shrink between chunks — the chunk-granular preemption point.
			// Either the dispatcher posted a shrink target below the current
			// participant count (this job is over its tenant's weighted
			// share, or a higher-priority / deadline-risk job is waiting),
			// or tenants are waiting for admission (generic queue pressure).
			// The cheap loads keep the no-pressure hot path arbitration-free.
			if a := j.active.Load(); a > 1 {
				if t := j.shrinkTo.Load(); t > 0 && a > t {
					peel = true
					break
				}
				if j.underPressure(home) {
					peel = true
					break
				}
			}
		}
		if reducing && touched {
			j.redMu.Lock()
			j.acc = j.req.Combine(j.acc, acc)
			j.redMu.Unlock()
		}
		if suspend {
			// Leave like an exhausted participant — partial folded, slot
			// returned — but the last one out parks the job Suspended with
			// its progress captured instead of completing it.
			j.pushSlot(sub)
			if j.active.Add(-1) == 0 {
				j.parkSuspended()
			}
			return
		}
		if !peel {
			// Exhausted the cursor: leave for good. The slot is returned
			// first so a grower can reuse it; the grow CAS requires
			// active >= 1, so the decrement below still safely completes the
			// job when this participant is the last.
			j.pushSlot(sub)
			if j.active.Add(-1) == 0 {
				j.complete()
			}
			return
		}
		if j.tryPeel() {
			j.pushSlot(sub)
			if home != nil {
				home.peeled.Add(1)
				j.tr.Event(trace.EvPeeled, home.cfg.shard, int(j.active.Load()), "")
			}
			return
		}
		// Lost the race to peel: every other participant left while this one
		// was folding, so it is now the job's only worker and must keep
		// going (with a fresh partial; arrival-order folding permits it).
	}
}

// underPressure reports whether a tenant is waiting for admission on the
// worker's own shard or on the job's home shard.
func (j *Job) underPressure(home *Scheduler) bool {
	if home != nil && home.depth.Load() > 0 {
		return true
	}
	return home != j.s && j.s != nil && j.s.depth.Load() > 0
}

// assignment is the work descriptor handed to one worker: its sub-team index
// and, for rigid jobs, the sub-team size and join half-barrier. Assignments
// travel by value through the per-worker mailbox channels — the whole
// descriptor is a few words, so handing one off allocates nothing.
type assignment struct {
	job *Job
	sub int
	// k and bar describe a rigid sub-team; bar is nil when k == 1. Elastic
	// assignments have k == 0.
	k   int
	bar barrier.HalfPair
	// elastic routes the worker through chunk self-scheduling.
	elastic bool
}

// run executes this worker's share of the job and participates in the join
// wave. It is called on a worker of scheduler home — normally the job's own
// scheduler, but a shard lending workers cross-shard executes foreign elastic
// assignments too.
func (a *assignment) run(home *Scheduler) {
	j := a.job
	if j.tr != nil {
		// One chunk-wave child span per participant stint. The stint of the
		// completing participant ends just after the join wave publishes the
		// result; exporters fall back to the trace end for still-open waves.
		sh := 0
		if home != nil {
			sh = home.cfg.shard
		}
		w := j.tr.WaveStart(sh, home != j.s)
		defer j.tr.WaveEnd(w)
	}
	if a.elastic {
		j.runElastic(home, a.sub)
		return
	}
	r := iterspace.Block(j.req.N, a.k, a.sub)
	if j.req.RBody != nil {
		acc := j.req.Identity
		if !r.Empty() {
			acc = j.req.RBody(a.sub, r.Begin, r.End, acc)
		}
		j.partials[a.sub].v = acc
	} else if !r.Empty() {
		j.req.Body(a.sub, r.Begin, r.End)
	}
	if a.k == 1 {
		j.complete()
		return
	}
	// Join wave: non-root sub-workers announce arrival and return to the
	// idle pool without waiting for the rest of the sub-team (the half the
	// half-barrier keeps); the sub-root collects arrivals in sub-worker order,
	// folding reduction views as they arrive.
	a.bar.JoinCombine(a.sub, j.combineInto())
	if a.sub == 0 {
		j.complete()
	}
}

// combineInto returns the join-wave view fold for reducing jobs, or nil.
func (j *Job) combineInto() func(into, from int) {
	if j.req.RBody == nil {
		return nil
	}
	return func(into, from int) {
		j.partials[into].v = j.req.Combine(j.partials[into].v, j.partials[from].v)
	}
}

// complete publishes the job's result. Called exactly once: by the rigid
// sub-root, by the last elastic participant to leave, or by the scheduler
// for degenerate jobs.
func (j *Job) complete() {
	if j.req.RBody != nil {
		if j.elastic {
			j.result = j.acc
		} else {
			j.result = j.partials[0].v
		}
	}
	j.state.Store(int32(Done))
	if j.s != nil {
		j.s.recordCompletion(j)
	}
	// The join wave is complete and the result stored: release the
	// dependents. A dependent can therefore never start before every
	// iteration of this job has executed and folded. The drain must happen
	// before finish publishes to waiters — once a waiter wakes, the owner
	// may legally Release the job, and the recycler's field reset would
	// race with a late dependent drain.
	j.finishDependents(nil)
	j.finish()
}

// addDependent registers d as a dependent of j, or reports that j is already
// terminal (returning its error: nil for a successful completion). The
// terminal handoff is arbitrated by depMu: complete and Cancel store the
// terminal state before draining dependents under depMu, so a registration
// is either observed by the drain or sees the terminal state here.
func (j *Job) addDependent(d *Job) (registered bool, terminalErr error) {
	j.depMu.Lock()
	defer j.depMu.Unlock()
	switch State(j.state.Load()) {
	case Done, Canceled:
		return false, j.err
	}
	j.dependents = append(j.dependents, d)
	return true, nil
}

// finishDependents drains the dependent list exactly once per terminal
// transition and notifies each dependent. upErr is nil for a successful
// completion and the (ErrCanceled-matching) cause otherwise.
func (j *Job) finishDependents(upErr error) {
	j.depMu.Lock()
	deps := j.dependents
	j.dependents = nil
	j.depMu.Unlock()
	for _, d := range deps {
		d.depDone(upErr)
	}
}

// registerDeps wires a freshly submitted Blocked job to its upstreams. The
// registration sentinel in waits keeps a racing upstream completion from
// releasing the job before every edge is registered.
func (j *Job) registerDeps() {
	j.waits.Store(int32(len(j.after)) + 1)
	for _, u := range j.after {
		if registered, upErr := u.addDependent(j); !registered {
			j.depDone(upErr)
		}
	}
	j.depDone(nil) // drop the sentinel
}

// depDone records one upstream turning terminal. The last call — holding the
// only remaining wait — either releases the job into an admission queue or,
// if any upstream failed, cancels it with the upstream's error wrapped.
func (j *Job) depDone(upErr error) {
	if upErr != nil {
		j.depMu.Lock()
		if j.depErr == nil {
			j.depErr = upErr
		}
		j.depMu.Unlock()
	}
	if j.waits.Add(-1) != 0 {
		return
	}
	j.depMu.Lock()
	upErr = j.depErr
	j.depMu.Unlock()
	// The edges served their purpose: drop them so a held tail handle does
	// not pin the whole ancestry (bodies, partials) in memory. Safe: the
	// zero-waits branch runs exactly once, registration is over, and
	// checkCycle short-circuits on the acyclic mark before ever reading a
	// submitted job's edge list.
	j.after = nil
	if upErr != nil {
		j.cancelBlocked(upErr)
		return
	}
	j.release()
}

// cancelBlocked is the propagation path: a dependency was canceled, so this
// job transitions Blocked -> Canceled (unless already canceled explicitly)
// and the cancellation cascades to its own dependents. Like Cancel, the
// terminal transition and the dependent drain share one depMu critical
// section (see there).
func (j *Job) cancelBlocked(upErr error) {
	j.depMu.Lock()
	if !j.state.CompareAndSwap(int32(Blocked), int32(Canceled)) {
		j.depMu.Unlock()
		return // explicitly canceled first; Cancel did the accounting
	}
	j.err = fmt.Errorf("jobs: upstream canceled: %w", upErr)
	deps := j.dependents
	j.dependents = nil
	j.depMu.Unlock()
	j.finish()
	if j.home != nil {
		j.home.canceled.Add(1)
		j.home.depCanceled.Add(1)
		j.home.blocked.Add(-1)
		j.home.signalBlockedFreed()
		j.home.deleteCheckpoint(j)
	}
	if j.tr != nil {
		sh := 0
		if j.home != nil {
			sh = j.home.cfg.shard
		}
		j.tr.Event(trace.EvCanceled, sh, 0, "upstream")
	}
	for _, d := range deps {
		d.depDone(j.err)
	}
}

// release moves a Blocked job whose upstreams all completed into an
// admission queue: the least-loaded shard of a sharded pool, or the home
// scheduler. The home scheduler's queue is guaranteed open while the job is
// blocked (its Close waits for the blocked gauge to drain), so the fallback
// can never fail.
func (j *Job) release() {
	if j.req.N <= 0 {
		// Degenerate loop: complete inline at release, exactly like the
		// no-dependency Submit path. A reducing job still yields its
		// identity.
		if !j.state.CompareAndSwap(int32(Blocked), int32(Running)) {
			return // canceled while blocked
		}
		if j.home != nil {
			j.home.blocked.Add(-1)
			j.home.released.Add(1)
			j.home.signalBlockedFreed()
		}
		j.started = time.Now()
		if j.req.RBody != nil {
			j.ensurePartials(1)
			j.partials[0].v = j.req.Identity
		}
		if j.tr != nil {
			sh := 0
			if j.home != nil {
				sh = j.home.cfg.shard
			}
			j.tr.Event(trace.EvReleased, sh, 0, "")
			j.tr.Event(trace.EvAdmitted, sh, 0, "")
			j.tr.Event(trace.EvDispatched, sh, 0, "degenerate")
		}
		j.complete()
		return
	}
	if j.pool != nil {
		if target := j.pool.routeFor(j.tenant); target != j.home && target.acceptReleased(j) {
			return
		}
	}
	j.home.acceptReleased(j)
}

// checkCycle verifies that the upstream graph reachable from after is
// acyclic. The amortization is deliberate: every job Submit returns is
// marked acyclic — its own ancestry was verified when it was submitted, and
// its edge list is immutable afterwards — so the DFS treats such nodes as
// proven and a long chain costs O(len(After)) per submission instead of
// re-walking its whole ancestry. Through the public API the walk therefore
// terminates at the first hop and ErrCycle is unreachable (as documented on
// ErrCycle, handles of already-submitted jobs cannot form a cycle); the DFS
// only does real work — and is only refutable — for Job values that did not
// come out of Submit, which is exactly the defensive surface it exists for.
func checkCycle(after []*Job) error {
	verified := true
	for _, u := range after {
		if u != nil && !u.acyclic {
			verified = false
			break
		}
	}
	if verified {
		// The public-API fast path: every upstream came out of Submit, so
		// the walk would terminate at the first hop anyway — skip the map
		// allocation entirely.
		return nil
	}
	const (
		grey, black = 1, 2
	)
	color := make(map[*Job]int8, len(after))
	var visit func(*Job) error
	visit = func(u *Job) error {
		if u.acyclic {
			return nil
		}
		switch color[u] {
		case grey:
			return ErrCycle
		case black:
			return nil
		}
		color[u] = grey
		for _, v := range u.after {
			if v == nil {
				continue // rejected separately at submit validation
			}
			if err := visit(v); err != nil {
				return err
			}
		}
		color[u] = black
		return nil
	}
	for _, u := range after {
		if err := visit(u); err != nil {
			return err
		}
	}
	return nil
}
