package jobs

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCloseTwiceSequential(t *testing.T) {
	// Regression: Close must be idempotent — the second call must neither
	// panic (double channel close) nor hang (double worker collection).
	s := New(Config{Workers: 2})
	j, err := s.Submit(Request{N: 100, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, err := j.Wait(); err != nil {
		t.Fatalf("job submitted before Close failed: %v", err)
	}
	if _, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after double Close = %v, want ErrClosed", err)
	}
}

func TestCloseConcurrentCallersAllWaitForTeardown(t *testing.T) {
	// Every concurrent Close call must return only after the teardown is
	// complete — a racing second caller must not return while workers are
	// still draining.
	s := New(Config{Workers: 2})
	var done atomic.Int64
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(Request{N: 64, Body: func(w, lo, hi int) { done.Add(1) }}); err != nil {
			t.Fatal(err)
		}
	}
	const closers = 8
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
			// Post-condition visible to EVERY closer, not just the one that
			// performed the teardown.
			if st := s.Stats(); st.Running != 0 || st.BusyWorkers != 0 {
				t.Errorf("Close returned with running=%d busy=%d", st.Running, st.BusyWorkers)
			}
		}()
	}
	wg.Wait()
	if done.Load() == 0 {
		t.Error("no job body ran before teardown")
	}
}

func TestSubmitRacingCloseNeverPanics(t *testing.T) {
	// Regression for the closed-channel hazard: submitters hammering a
	// scheduler while it closes must each get either a completed job or
	// ErrClosed — never a panic on the closed admission queue.
	for round := 0; round < 10; round++ {
		s := New(Config{Workers: 2})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					j, err := s.Submit(Request{N: 32, Body: func(w, lo, hi int) {}})
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Submit during Close: %v", err)
						}
						return
					}
					if _, err := j.Wait(); err != nil {
						t.Errorf("job accepted before Close failed: %v", err)
						return
					}
				}
			}()
		}
		close(start)
		s.Close()
		wg.Wait()
	}
}

func TestShardedCloseIdempotentAndConcurrent(t *testing.T) {
	p := NewSharded(ShardedConfig{Config: Config{Workers: 2}, Shards: 2})
	j, err := p.Submit(Request{N: 100, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
	}
	wg.Wait()
	p.Close()
	if _, err := j.Wait(); err != nil {
		t.Fatalf("job submitted before Close failed: %v", err)
	}
	if _, err := p.Submit(Request{N: 1, Body: func(w, lo, hi int) {}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := p.SubmitTo(0, Request{N: 1, Body: func(w, lo, hi int) {}}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitTo after Close = %v, want ErrClosed", err)
	}
}
