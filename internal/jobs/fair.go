package jobs

// fair.go is the admission *policy* layer: per-tenant accounts with weights,
// job priorities and deadlines, arbitrated by a stride-based weighted fair
// queue that replaces the scheduler's original single FIFO.
//
// Policy, in precedence order:
//
//  1. Priority classes are strict: a waiting job with a higher Priority is
//     always admitted before every lower-priority job, whatever its tenant.
//  2. Within a priority class, tenants are arbitrated by stride scheduling:
//     each tenant holds a virtual-time pass advanced by stride = K/weight on
//     every admission, and the tenant with the smallest pass goes next, so
//     over any saturated window tenants are served in proportion to their
//     weights. An idling tenant's pass is caught up to the queue's clock
//     when it becomes active again, so credit cannot be banked.
//  3. When two tenants' equal-priority heads BOTH carry deadlines, they are
//     tie-broken EDF (earliest deadline first) before the stride
//     comparison; a deadline never beats deadline-less work by mere
//     presence (that would let one tenant starve its class by stamping
//     deadlines on everything). Within one tenant the order is priority
//     desc, deadline asc (none last), FIFO — a tenant's own deadline jobs
//     may jump its own queue freely.
//
// The arbitration is deliberately kept off the execution hot path (cf. the
// availability/ordering tension in PAPERS.md: global arbitration must not
// serialize the wait-free serving paths): workers still claim chunks with a
// single atomic add, and the fair queue's mutex is taken only per job
// admission, steal or stats snapshot — never per chunk.
//
// Preemption is chunk-granular and reuses the elastic peel path: when
// tenants are waiting and no worker is idle, the dispatcher computes each
// running tenant's weighted share of the team and posts a shrink target on
// over-share running jobs (halved further when the best waiting job has a
// higher priority than the victim or a deadline at risk). Participants
// observe the target between chunks and peel — never below one participant,
// so no work is lost and the victim's join wave still completes.

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
)

// strideScale is the stride numerator: a tenant's pass advances by
// strideScale/weight per admission, so a weight-3 tenant is admitted three
// times as often as a weight-1 tenant under saturation.
const strideScale = 1 << 16

// defaultTenant is the account of jobs submitted without a tenant name.
const defaultTenant = "default"

// tenantName normalizes a request's tenant to its account name.
func tenantName(name string) string {
	if name == "" {
		return defaultTenant
	}
	return name
}

// TenantStats is one tenant's slice of a scheduler's Stats. The JSON field
// names are stable (cmd/loopd serves them and labels the tenant-labelled
// /metrics series from this struct).
type TenantStats struct {
	// Weight is the tenant's fair-share weight (1 unless configured).
	Weight int `json:"weight"`
	// QueueDepth is the number of the tenant's jobs currently waiting in
	// this scheduler's fair queue.
	QueueDepth int `json:"queue_depth"`
	// Submitted and Completed count the tenant's jobs; on a sharded pool a
	// stolen job is submitted on one shard and completed on another, so the
	// per-shard values differ while the pool-wide sums reconcile.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	// IterationsDone is the tenant's served work: loop iterations completed.
	IterationsDone int64 `json:"iterations_done"`
	// Preempted counts shrink requests the dispatcher posted against the
	// tenant's running jobs to serve other waiting tenants.
	Preempted int64 `json:"preempted_total"`
	// DeadlineMissed counts the tenant's jobs that completed after their
	// requested deadline.
	DeadlineMissed int64 `json:"deadline_missed_total"`
	// WaitSumSeconds is the cumulative submission-to-admission wait over the
	// tenant's completed jobs (with Completed, the _sum/_count pair of a
	// wait-time summary).
	WaitSumSeconds float64 `json:"wait_sum_seconds"`
	// RunSumSeconds is the cumulative admission-to-completion time over the
	// tenant's completed jobs (with Completed, the _sum/_count pair of a
	// run-time summary).
	RunSumSeconds float64 `json:"run_sum_seconds"`
	// DeadlineJobsTotal counts completed jobs that carried a deadline;
	// DeadlineMissed of them finished late, the rest hit. Cumulative, so the
	// SLO window's hit ratio reconciles against these totals.
	DeadlineJobsTotal int64 `json:"deadline_jobs_total"`
	// ShedTotal counts the tenant's submissions rejected by admission
	// control: InfeasibleTotal (deadline unmeetable at submit) plus
	// BackloggedTotal (bounded queue wait expired) plus breaker rejections.
	// BreakerState is the tenant's circuit-breaker state ("closed", "open",
	// "half-open"); empty when breakers are disabled or the tenant has no
	// admission history. All four are filled only on top-level snapshots (a
	// standalone scheduler's Stats, a Sharded pool's merged totals) — the
	// admission state is pool-wide, not per shard.
	ShedTotal       int64  `json:"shed_total,omitempty"`
	InfeasibleTotal int64  `json:"infeasible_total,omitempty"`
	BackloggedTotal int64  `json:"backlogged_total,omitempty"`
	BreakerState    string `json:"breaker_state,omitempty"`
	// SLO is the tenant's rolling-window SLO snapshot (see slo.go): deadline
	// hit ratio, burn rate, and wait/run quantiles over the recent window.
	// Nil until the tenant's first completion.
	SLO *TenantSLO `json:"slo,omitempty"`

	// Raw SLO windows backing SLO, carried unexported so a Sharded pool can
	// merge the per-shard windows into pool-wide quantiles at the same
	// instant (same pattern as the scheduler's latency windows).
	sloWait, sloRun    []float64
	sloHits, sloMisses int
}

// tenant is one per-tenant account: the fair-queue state guarded by the
// owning fairQueue's mutex, plus atomic served/wait counters updated from
// submit and completion paths without the queue lock.
type tenant struct {
	name string

	// Guarded by fairQueue.mu.
	weight int
	pass   uint64
	q      jobHeap

	// Atomics. depth is the hot one: shard stealing moves it lock-free from
	// worker goroutines (sharded.go) while submitters bump the metering
	// counters below, so it gets its own cache line to keep a steal wave from
	// ping-ponging the line the submit path writes.
	depth          barrier.PaddedInt64
	submitted      atomic.Int64
	completed      atomic.Int64
	iters          atomic.Int64
	preempted      atomic.Int64
	deadlineMissed atomic.Int64
	deadlineJobs   atomic.Int64
	waitNanos      atomic.Int64
	runNanos       atomic.Int64

	// slo is the tenant's rolling window of completion samples (see slo.go);
	// internally locked, touched once per job completion.
	slo sloRing
}

// stride is the pass increment per admission: inversely proportional to the
// weight, floored so a zero or negative configured weight behaves as 1.
func (t *tenant) stride() uint64 {
	w := t.weight
	if w < 1 {
		w = 1
	}
	return strideScale / uint64(w)
}

// deadlineKey maps a job's deadline to a sortable key; the zero deadline
// (none) sorts after every real one.
func deadlineKey(j *Job) int64 {
	if j.deadline.IsZero() {
		return math.MaxInt64
	}
	return j.deadline.UnixNano()
}

// jobLess is the within-tenant admission order: priority descending, then
// EDF (earliest deadline first), then submission order.
func jobLess(a, b *Job) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if da, db := deadlineKey(a), deadlineKey(b); da != db {
		return da < db
	}
	return a.seq < b.seq
}

// jobHeap is a min-heap under jobLess: the root is the tenant's next job.
type jobHeap []*Job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return jobLess(h[i], h[j]) }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// fairQueue is the admission queue of one scheduler: per-tenant job heaps
// arbitrated by the policy above. All methods are safe for concurrent use
// (the dispatcher pops locally, sibling shards pop through steals, and
// submitters and stats readers touch the accounts).
type fairQueue struct {
	mu sync.Mutex
	// fifo disables the policy (Config.DisableFair): jobs are admitted in
	// global submission order, priorities, deadlines and weights ignored.
	// The tenant accounts still meter served work.
	fifo    bool
	tenants map[string]*tenant
	order   []*tenant // stable scan order for deterministic arbitration
	fifoQ   []*Job
	clock   uint64 // pass of the most recently admitted tenant
	size    int
	seq     uint64
}

func newFairQueue(fifo bool, weights map[string]int) *fairQueue {
	fq := &fairQueue{fifo: fifo, tenants: make(map[string]*tenant)}
	for name, w := range weights {
		fq.setWeight(name, w)
	}
	return fq
}

// account returns (creating if needed) the named tenant's account; name must
// already be normalized. Callers must hold fq.mu.
func (fq *fairQueue) accountLocked(name string) *tenant {
	t, ok := fq.tenants[name]
	if !ok {
		t = &tenant{name: name, weight: 1}
		fq.tenants[name] = t
		fq.order = append(fq.order, t)
	}
	return t
}

// account is accountLocked behind the lock, for submit/completion metering.
func (fq *fairQueue) account(name string) *tenant {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.accountLocked(name)
}

// setWeight registers or re-weights a tenant; weights < 1 are clamped to 1.
func (fq *fairQueue) setWeight(name string, weight int) {
	if weight < 1 {
		weight = 1
	}
	fq.mu.Lock()
	fq.accountLocked(tenantName(name)).weight = weight
	fq.mu.Unlock()
}

// push enqueues a job under its tenant's account.
func (fq *fairQueue) push(j *Job) {
	fq.mu.Lock()
	t := fq.accountLocked(j.tenant)
	j.seq = fq.seq
	fq.seq++
	if fq.fifo {
		fq.fifoQ = append(fq.fifoQ, j)
	} else {
		if t.q.Len() == 0 && t.pass < fq.clock {
			// An idling tenant re-activates at the queue's clock: unused
			// share is not banked against the active tenants.
			t.pass = fq.clock
		}
		heap.Push(&t.q, j)
	}
	fq.size++
	t.depth.Add(1)
	fq.mu.Unlock()
}

// pushBatch enqueues every non-degenerate job of a batch under ONE lock
// acquisition — the fair-queue half of SubmitBatch's amortized intake.
// Entries that are nil or degenerate (N <= 0: completed inline by the
// submitter, never queued) are skipped, so the caller can hand over its
// result slice as-is. When meter is set each queued job also bumps its
// tenant's submitted counter here, folding the per-job account() round trip
// of the single-submit path into the same critical section.
func (fq *fairQueue) pushBatch(jobs []*Job, meter bool) {
	fq.mu.Lock()
	for _, j := range jobs {
		if j == nil || j.req.N <= 0 {
			continue
		}
		t := fq.accountLocked(j.tenant)
		j.seq = fq.seq
		fq.seq++
		if fq.fifo {
			fq.fifoQ = append(fq.fifoQ, j)
		} else {
			if t.q.Len() == 0 && t.pass < fq.clock {
				t.pass = fq.clock
			}
			heap.Push(&t.q, j)
		}
		fq.size++
		t.depth.Add(1)
		if meter {
			t.submitted.Add(1)
		}
	}
	fq.mu.Unlock()
}

// headBetter reports whether tenant a's next job should be admitted before
// tenant b's: priority class first; then, only when BOTH heads carry
// deadlines, EDF — a deadline must order deadline work, never beat
// deadline-less work by mere presence, or a tenant could starve every
// sibling in its class just by stamping deadlines on its jobs; then the
// smaller stride pass (the weighted-fair order); then submission order
// (full determinism for equal passes).
func headBetter(a, b *tenant) bool {
	ja, jb := a.q[0], b.q[0]
	if ja.prio != jb.prio {
		return ja.prio > jb.prio
	}
	if da, db := deadlineKey(ja), deadlineKey(jb); da != db && da != math.MaxInt64 && db != math.MaxInt64 {
		return da < db
	}
	if a.pass != b.pass {
		return a.pass < b.pass
	}
	return ja.seq < jb.seq
}

// bestLocked returns the tenant whose head job the policy admits next,
// while also advancing fq.clock to the stride virtual time: the minimum
// pass among tenants with queued work. The clock deliberately ignores WHICH
// tenant won (a priority or EDF pop can select a tenant whose pass is far
// ahead); re-activation catches an idle tenant up to the class floor, not
// to an inflated winner's pass, so queue flicker never forfeits earned
// share and a priority burst never locks re-activating tenants out.
// Callers must hold fq.mu; fifo mode never reaches here.
func (fq *fairQueue) bestLocked() *tenant {
	var best *tenant
	first := true
	var minPass uint64
	for _, t := range fq.order {
		if t.q.Len() == 0 {
			continue
		}
		if first || t.pass < minPass {
			minPass = t.pass
			first = false
		}
		if best == nil || headBetter(t, best) {
			best = t
		}
	}
	if best != nil {
		fq.clock = minPass
	}
	return best
}

// pop removes and returns the next job to admit per the policy, or nil when
// the queue is empty. Popping charges the tenant's pass by its stride; a
// canceled job still in the queue is popped (and charged) like any other —
// the caller detects the lost admission CAS and pays no worker for it.
func (fq *fairQueue) pop() *Job {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.size == 0 {
		return nil
	}
	if fq.fifo {
		j := fq.fifoQ[0]
		fq.fifoQ[0] = nil
		fq.fifoQ = fq.fifoQ[1:]
		fq.size--
		fq.tenants[j.tenant].depth.Add(-1)
		return j
	}
	best := fq.bestLocked()
	if best == nil {
		return nil
	}
	j := heap.Pop(&best.q).(*Job)
	best.pass += best.stride()
	fq.size--
	best.depth.Add(-1)
	return j
}

// remove takes a specific queued job out of the queue, reporting whether it
// was present. It is Suspend's eager dequeue: removing the entry FIRST gives
// the suspender exclusive ownership of it (the dispatcher and stealing
// siblings always pop before their admission CAS), so no stale entry can
// linger behind a state flip. The linear scan is fine — remove runs on the
// suspend control path, never on admission or execution paths. No pass is
// charged: the tenant never received service for the entry.
func (fq *fairQueue) remove(j *Job) bool {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.fifo {
		for i, q := range fq.fifoQ {
			if q != j {
				continue
			}
			copy(fq.fifoQ[i:], fq.fifoQ[i+1:])
			fq.fifoQ[len(fq.fifoQ)-1] = nil
			fq.fifoQ = fq.fifoQ[:len(fq.fifoQ)-1]
			fq.size--
			fq.tenants[j.tenant].depth.Add(-1)
			return true
		}
		return false
	}
	t := fq.tenants[j.tenant]
	if t == nil {
		return false
	}
	for i, q := range t.q {
		if q == j {
			heap.Remove(&t.q, i)
			fq.size--
			t.depth.Add(-1)
			return true
		}
	}
	return false
}

// peek returns the job pop would return next, without popping or charging
// (the clock still advances to the current class floor, which is
// idempotent and side-effect-equivalent to the pop that follows).
func (fq *fairQueue) peek() *Job {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.size == 0 {
		return nil
	}
	if fq.fifo {
		return fq.fifoQ[0]
	}
	best := fq.bestLocked()
	if best == nil {
		return nil
	}
	return best.q[0]
}

// len returns the number of queued jobs.
func (fq *fairQueue) len() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.size
}

// depthOf returns the named tenant's queued-job count (0 for an unknown
// tenant), without creating an account.
func (fq *fairQueue) depthOf(name string) int64 {
	fq.mu.Lock()
	t := fq.tenants[tenantName(name)]
	fq.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.depth.Load()
}

// shares computes each active tenant's weighted share of p workers into out
// (cleared first; the caller owns and reuses it — the dispatcher calls this
// every pressure round, so the scratch must not be reallocated per call).
// Active tenants are those with queued jobs plus the keys of running (the
// tenants of currently running elastic jobs). Every share is at least 1:
// preemption never asks a tenant to vanish, only to shrink toward its share.
func (fq *fairQueue) shares(p int, running, out map[string]int) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	clear(out)
	totalW := 0
	consider := func(t *tenant) {
		if _, ok := out[t.name]; ok {
			return
		}
		w := t.weight
		if w < 1 {
			w = 1
		}
		out[t.name] = w
		totalW += w
	}
	for _, t := range fq.order {
		if t.q.Len() > 0 {
			consider(t)
		}
	}
	for name := range running {
		consider(fq.accountLocked(name))
	}
	for name, w := range out {
		share := p * w / totalW
		if share < 1 {
			share = 1
		}
		out[name] = share
	}
}

// tenantsSnapshot builds the per-tenant slice of a Stats snapshot; target is
// the scheduler's normalized SLO deadline-hit objective.
func (fq *fairQueue) tenantsSnapshot(target float64) map[string]TenantStats {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if len(fq.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantStats, len(fq.tenants))
	for name, t := range fq.tenants {
		ts := TenantStats{
			Weight:            t.weight,
			QueueDepth:        int(t.depth.Load()),
			Submitted:         t.submitted.Load(),
			Completed:         t.completed.Load(),
			IterationsDone:    t.iters.Load(),
			Preempted:         t.preempted.Load(),
			DeadlineMissed:    t.deadlineMissed.Load(),
			DeadlineJobsTotal: t.deadlineJobs.Load(),
			WaitSumSeconds:    float64(t.waitNanos.Load()) / float64(time.Second),
			RunSumSeconds:     float64(t.runNanos.Load()) / float64(time.Second),
		}
		ts.sloWait, ts.sloRun, ts.sloHits, ts.sloMisses = t.slo.snapshot()
		ts.SLO = buildTenantSLO(target, ts.sloWait, ts.sloRun, ts.sloHits, ts.sloMisses)
		out[name] = ts
	}
	return out
}
