//go:build !race

package jobs

// raceEnabled reports whether the test binary was built with -race; the
// allocation-regression tests skip under it (the race runtime's
// instrumentation allocates on paths the production build does not).
const raceEnabled = false
