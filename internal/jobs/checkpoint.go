// checkpoint.go is the durability layer of suspend/resume: a Checkpoint is
// one job's progress snapshot — identity, the re-buildable request (workload
// name + encoded params; closures cannot be persisted), and the cursor
// watermark plus partial reduction state captured at a quiescent chunk-wave
// boundary — behind a pluggable CheckpointStore (in-memory, or a file-backed
// WAL for crash recovery across process restarts).
//
// Consistency model: the runtime only snapshots progress at points where no
// participant is mid-chunk — admission, suspend quiesce, and completion — so
// a checkpoint's (Cursor, Acc) pair is always exact: every iteration below
// Cursor executed exactly once and is folded into Acc, nothing above it ran.
// Nothing here is on the per-chunk execution path; a job pays store I/O only
// at those lifecycle transitions.
package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Checkpoint is one job's durable progress snapshot. The serving layer fills
// the identity fields (Workload, Params, Label) when it submits a
// checkpointed request; the runtime fills everything else and keeps the
// store's copy current across suspend/resume cycles.
type Checkpoint struct {
	// JobID is the tracer-assigned job id, stable across suspend/resume and
	// across restarts (recovery re-begins the trace under the same id).
	JobID uint64 `json:"job"`
	// Workload names the request builder and Params carries its encoded
	// parameters (e.g. bench.JobParams as JSON): recovery reconstructs the
	// request by name because function values cannot be persisted.
	Workload string          `json:"workload"`
	Params   json.RawMessage `json:"params,omitempty"`
	// Label is the request's diagnostic label.
	Label string `json:"label,omitempty"`
	// Scheduling policy, restored verbatim on recovery. Deadline is absolute,
	// so a job recovered after its deadline completes as a (counted) miss.
	Tenant   string    `json:"tenant,omitempty"`
	Priority int       `json:"priority,omitempty"`
	Deadline time.Time `json:"deadline,omitempty"`
	// N is the iteration space; Cursor the exclusive executed watermark:
	// every iteration in [0, Cursor) ran exactly once, nothing at or above
	// Cursor did. A resumed job claims chunks starting at Cursor.
	N      int `json:"n"`
	Cursor int `json:"cursor"`
	// Acc is the partial reduction folded over [0, Cursor), meaningful only
	// when Commutative is set (the elastic arrival-order fold); rigid
	// (ordered) reducers cannot resume mid-space and restart from Cursor 0.
	Acc         float64 `json:"acc,omitempty"`
	Commutative bool    `json:"commutative,omitempty"`
	// After lists the trace ids of upstream jobs this one was submitted
	// behind, so recovery can rebuild dependency edges. Ids absent from the
	// store at recovery finished before the crash and gate nothing.
	After []uint64 `json:"after,omitempty"`
}

// CheckpointStore persists job progress snapshots. Implementations must be
// safe for concurrent use; the runtime calls them only at quiescent
// lifecycle transitions (admission, suspend, completion), never per chunk.
type CheckpointStore interface {
	// Put durably records cp, replacing any previous snapshot with the same
	// JobID.
	Put(cp Checkpoint) error
	// Delete drops the snapshot of the given job — the job completed or was
	// canceled and must not be recovered.
	Delete(jobID uint64) error
	// Load returns every live snapshot (unfinished jobs), for crash
	// recovery. Snapshots are returned in ascending JobID order.
	Load() ([]Checkpoint, error)
}

// MemStore is an in-memory CheckpointStore: suspend/resume without
// durability (tests, single-process pause/resume, migration staging).
type MemStore struct {
	mu   sync.Mutex
	live map[uint64]Checkpoint
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{live: make(map[uint64]Checkpoint)}
}

// Put implements CheckpointStore.
func (st *MemStore) Put(cp Checkpoint) error {
	st.mu.Lock()
	st.live[cp.JobID] = cp
	st.mu.Unlock()
	return nil
}

// Delete implements CheckpointStore.
func (st *MemStore) Delete(jobID uint64) error {
	st.mu.Lock()
	delete(st.live, jobID)
	st.mu.Unlock()
	return nil
}

// Load implements CheckpointStore.
func (st *MemStore) Load() ([]Checkpoint, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return sortedCheckpoints(st.live), nil
}

// walRecord is one line of the file store's append-only log: a put carrying
// the snapshot, or a delete naming the finished job.
type walRecord struct {
	Op  string      `json:"op"` // "put" | "del"
	Job uint64      `json:"job,omitempty"`
	CP  *Checkpoint `json:"cp,omitempty"`
}

// walName is the WAL file within the checkpoint directory.
const walName = "checkpoints.wal"

// walCompactSlack is how many dead records the WAL may accumulate beyond the
// live set before an in-place compaction (rewrite with only live snapshots).
const walCompactSlack = 1024

// FileStore is a file-backed CheckpointStore: an append-only JSON-lines WAL
// under a directory, replayed on open and compacted when dead records
// accumulate. Writes go through the OS page cache without fsync — they
// survive a process crash (kill -9) but not a host power loss; see the
// README's durability caveats.
type FileStore struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	live    map[uint64]Checkpoint
	records int // records in the WAL file, live and dead
}

// OpenFileStore opens (creating if needed) the WAL under dir, replays it
// into memory and compacts it, so every restart starts from a minimal log.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint store: %w", err)
	}
	st := &FileStore{
		path: filepath.Join(dir, walName),
		live: make(map[uint64]Checkpoint),
	}
	if err := st.replay(); err != nil {
		return nil, err
	}
	if err := st.compactLocked(); err != nil {
		return nil, err
	}
	return st, nil
}

// replay loads the existing WAL into the live map. A torn final line (the
// crash hit mid-write) is ignored; any earlier malformed line fails the open
// — that is corruption, not a crash artifact.
func (st *FileStore) replay() error {
	f, err := os.Open(st.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Defer the failure one line: only a non-final malformed line is
			// corruption.
			pendingErr = fmt.Errorf("checkpoint store: corrupt WAL record: %w", err)
			continue
		}
		st.records++
		switch rec.Op {
		case "put":
			if rec.CP != nil {
				st.live[rec.CP.JobID] = *rec.CP
			}
		case "del":
			delete(st.live, rec.Job)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	return nil
}

// compactLocked rewrites the WAL with only the live snapshots, atomically
// (write temp, rename over). Callers hold no lock during open; Put/Delete
// call it under st.mu.
func (st *FileStore) compactLocked() error {
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	tmp := st.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, cp := range sortedCheckpoints(st.live) {
		cp := cp
		if err := writeRecord(w, walRecord{Op: "put", CP: &cp}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	if err := os.Rename(tmp, st.path); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	st.records = len(st.live)
	st.f, err = os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	return nil
}

func writeRecord(w *bufio.Writer, rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	return nil
}

// append writes one record to the WAL and compacts when dead records pile up
// past the slack.
func (st *FileStore) append(rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	data = append(data, '\n')
	if _, err := st.f.Write(data); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	st.records++
	if st.records > len(st.live)+walCompactSlack {
		return st.compactLocked()
	}
	return nil
}

// Put implements CheckpointStore.
func (st *FileStore) Put(cp Checkpoint) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.append(walRecord{Op: "put", CP: &cp}); err != nil {
		return err
	}
	st.live[cp.JobID] = cp
	return nil
}

// Delete implements CheckpointStore.
func (st *FileStore) Delete(jobID uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.live[jobID]; !ok {
		return nil
	}
	if err := st.append(walRecord{Op: "del", Job: jobID}); err != nil {
		return err
	}
	delete(st.live, jobID)
	return nil
}

// Load implements CheckpointStore.
func (st *FileStore) Load() ([]Checkpoint, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return sortedCheckpoints(st.live), nil
}

// Close flushes and closes the WAL. The store must not be used afterwards.
func (st *FileStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

func sortedCheckpoints(live map[uint64]Checkpoint) []Checkpoint {
	out := make([]Checkpoint, 0, len(live))
	for _, cp := range live {
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}
