package jobs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testSharded builds a sharded pool bounded for the machine and closes it at
// cleanup.
func testSharded(t *testing.T, cfg ShardedConfig) *Sharded {
	t.Helper()
	p := NewSharded(cfg)
	t.Cleanup(p.Close)
	return p
}

func TestShardedPartitionsWorkersAcrossShards(t *testing.T) {
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 5}, Shards: 2})
	if p.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", p.Shards())
	}
	if p.P() != 5 {
		t.Errorf("total workers = %d, want 5", p.P())
	}
	if got := p.Shard(0).P() + p.Shard(1).P(); got != 5 {
		t.Errorf("shard workers sum to %d, want 5", got)
	}
	for i := 0; i < p.Shards(); i++ {
		if p.Shard(i).P() < 1 {
			t.Errorf("shard %d has %d workers", i, p.Shard(i).P())
		}
	}
	// Shard count never exceeds the worker count.
	small := testSharded(t, ShardedConfig{Config: Config{Workers: 2}, Shards: 8})
	if small.Shards() != 2 {
		t.Errorf("2-worker pool built %d shards, want 2", small.Shards())
	}
}

func TestShardedConcurrentTenantsExactResults(t *testing.T) {
	// The acceptance shape across shards: many tenants, every reduction
	// verified, totals reconciling across per-shard stats.
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 4}, Shards: 2})
	const tenants, jobsEach = 8, 15
	var wg sync.WaitGroup
	for tnt := 0; tnt < tenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				n := 400 + 7*tnt + i
				j, err := p.Submit(Request{
					N:           n,
					Commutative: true,
					Combine:     func(a, b float64) float64 { return a + b },
					RBody: func(w, lo, hi int, acc float64) float64 {
						for k := lo; k < hi; k++ {
							acc += float64(k)
						}
						return acc
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				v, err := j.Wait()
				if err != nil {
					t.Error(err)
					return
				}
				if want := float64(n) * float64(n-1) / 2; v != want {
					t.Errorf("tenant %d job %d: sum = %v, want %v", tnt, i, v, want)
				}
			}
		}(tnt)
	}
	wg.Wait()
	st := p.Stats()
	if st.Total.Completed != tenants*jobsEach {
		t.Errorf("total completed = %d, want %d", st.Total.Completed, tenants*jobsEach)
	}
	var sum int64
	for _, sh := range st.Shards {
		sum += sh.Completed
	}
	if sum != st.Total.Completed {
		t.Errorf("per-shard completed sum %d != total %d", sum, st.Total.Completed)
	}
	// The router must spread admissions: with 8 concurrent tenants and
	// round-robin tie-breaking, no shard stays empty.
	for i, sh := range st.Shards {
		if sh.Submitted == 0 {
			t.Errorf("shard %d admitted no jobs: router not spreading", i)
		}
	}
}

func TestShardedStealMovesQueuedJobs(t *testing.T) {
	// One shard's lone worker is blocked with jobs queued behind it; the idle
	// sibling must steal those whole jobs and run them long before the
	// blocker finishes.
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 2}, Shards: 2})
	release := make(chan struct{})
	blocker, err := p.SubmitTo(0, Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running)
	const queued = 4
	var completed atomic.Int64
	jobs := make([]*Job, queued)
	for i := range jobs {
		if jobs[i], err = p.SubmitTo(0, Request{N: 64, Body: func(w, lo, hi int) {}}); err != nil {
			t.Fatal(err)
		}
		go func(j *Job) {
			if _, err := j.Wait(); err == nil {
				completed.Add(1)
			}
		}(jobs[i])
	}
	// Shard 0's dispatcher may park one popped job waiting for its blocked
	// worker; every job still in the queue is stealable.
	waitFor(t, "stolen jobs to complete", func() bool { return completed.Load() >= queued-1 })
	if st := blocker.State(); st != Running {
		t.Errorf("blocker already %v: queued jobs were not stolen, they convoyed", st)
	}
	if got := p.Shard(1).Stats().Stolen; got < 1 {
		t.Errorf("shard 1 stolen = %d, want >= 1", got)
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedLendsWorkersToForeignElasticJob(t *testing.T) {
	// A big elastic job on one shard must attract the idle sibling's workers.
	// Whichever shard ends up hosting the job (the sibling may steal it from
	// the queue before the pinned shard admits it), the *other* shard has
	// nothing to run and must lend its worker: pool-wide, a lone job on a
	// 2-shard pool always ends up with both workers.
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 2}, Shards: 2})
	var marks [256]atomic.Int32
	j, err := p.SubmitTo(0, Request{N: len(marks), Grain: 1, Body: func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
			time.Sleep(time.Millisecond)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a lent worker", func() bool { return p.Stats().Total.Lent >= 1 })
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range marks {
		if got := marks[i].Load(); got != 1 {
			t.Fatalf("iteration %d executed %d times, want 1", i, got)
		}
	}
	if k := j.Workers(); k < 2 {
		t.Errorf("job peaked at %d workers, want >= 2 after cross-shard lending", k)
	}
}

func TestShardedStealingDisabled(t *testing.T) {
	// With stealing off the shards are independent: queued jobs stay behind
	// their shard's blocker.
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 2}, Shards: 2, DisableStealing: true})
	release := make(chan struct{})
	blocker, err := p.SubmitTo(0, Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running)
	victim, err := p.SubmitTo(0, Request{N: 8, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if victim.State() != Pending {
		t.Errorf("pinned job %v with stealing disabled, want pending behind the blocker", victim.State())
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Total.Stolen != 0 || st.Total.Lent != 0 {
		t.Errorf("stolen/lent = %d/%d with stealing disabled", st.Total.Stolen, st.Total.Lent)
	}
}

func TestShardedPinningValidation(t *testing.T) {
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 2}, Shards: 2, DisableStealing: true})
	if _, err := p.SubmitTo(-1, Request{N: 1, Body: func(w, lo, hi int) {}}); err == nil {
		t.Error("negative shard accepted")
	}
	if _, err := p.SubmitTo(2, Request{N: 1, Body: func(w, lo, hi int) {}}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	j, err := p.SubmitTo(1, Request{N: 32, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := p.Shard(1).Stats().Submitted; got != 1 {
		t.Errorf("shard 1 submitted = %d, want the pinned job", got)
	}
	if got := p.Shard(0).Stats().Submitted; got != 0 {
		t.Errorf("shard 0 submitted = %d, want 0", got)
	}
}

func TestShardedCancelDuringStealChurn(t *testing.T) {
	// Run under -race: cancels racing the steal migration must end each job
	// in exactly one of {completed once, canceled} — never both, never lost.
	p := testSharded(t, ShardedConfig{Config: Config{Workers: 2}, Shards: 2, StealInterval: 50 * time.Microsecond})
	const rounds = 200
	var ran, canceled atomic.Int64
	for i := 0; i < rounds; i++ {
		j, err := p.SubmitTo(i%2, Request{N: 16, Body: func(w, lo, hi int) {}})
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			j.Cancel() // races admission and migration on purpose
		}
		if _, err := j.Wait(); err != nil {
			canceled.Add(1)
		} else {
			ran.Add(1)
		}
	}
	if got := ran.Load() + canceled.Load(); got != rounds {
		t.Fatalf("accounted %d jobs, want %d", got, rounds)
	}
	st := p.Stats()
	if st.Total.Completed != ran.Load() {
		t.Errorf("stats completed = %d, observed %d", st.Total.Completed, ran.Load())
	}
	if st.Total.Canceled != canceled.Load() {
		t.Errorf("stats canceled = %d, observed %d", st.Total.Canceled, canceled.Load())
	}
	waitFor(t, "queues drained", func() bool {
		st := p.Stats()
		return st.Total.QueueDepth == 0 && st.Total.Running == 0
	})
}
