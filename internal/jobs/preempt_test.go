package jobs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Preemption regression tests, run under -race: chunk-granular preemption
// (the dispatcher posting shrink targets, participants peeling between
// chunks) must never lose a chunk, lose a join wave, or collide with
// cross-shard stealing. The bodies are time-bound (sleeps) so the
// contention windows are wide on any machine.

func TestPreemptVsJoin(t *testing.T) {
	// A victim peeled while executing its last chunks must still complete
	// its join wave with an exact result: the peel decrement and the
	// completing decrement race on the participant count, and the last
	// participant out must fold every partial.
	s := testScheduler(t, 4, Config{TenantWeights: map[string]int{
		"victim": 1, "urgent": 8,
	}})
	rounds := 15
	if testing.Short() {
		rounds = 5
	}
	sawShrink := false
	for round := 0; round < rounds; round++ {
		const n = 64 // grain 1: up to 64 chunk boundaries to peel at
		victim, err := s.Submit(Request{
			N: n, Grain: 1, Tenant: "victim", Commutative: true,
			Combine: func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					time.Sleep(50 * time.Microsecond)
					acc += float64(i)
				}
				return acc
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, victim, Running)
		// A burst of higher-priority jobs from a heavier tenant: the
		// dispatcher must shrink the victim between chunks to serve them.
		urgent := make([]*Job, 6)
		for i := range urgent {
			urgent[i], err = s.Submit(Request{
				N: 8, Tenant: "urgent", Priority: 9,
				Deadline: time.Now().Add(50 * time.Millisecond),
				Body:     func(w, lo, hi int) { time.Sleep(100 * time.Microsecond) },
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		v, err := victim.Wait()
		if err != nil {
			t.Fatalf("round %d: victim: %v", round, err)
		}
		if want := float64(n) * float64(n-1) / 2; v != want {
			t.Fatalf("round %d: victim sum = %v, want %v (chunk lost or double-run during preemption)", round, v, want)
		}
		for i, u := range urgent {
			if _, err := u.Wait(); err != nil {
				t.Fatalf("round %d: urgent %d: %v", round, i, err)
			}
		}
		if st := s.Stats(); st.Preempted > 0 || st.Peeled > 0 {
			sawShrink = true
		}
	}
	if !sawShrink {
		t.Error("no preemption or peel activity across all rounds: the shrink path never engaged")
	}
}

func TestPreemptVsSteal(t *testing.T) {
	// A job being shrunk on shard A must not be concurrently stolen by
	// shard B: stealing CASes Pending->stealing, so a Running (shrinking)
	// victim is unstealable, and the queued urgent jobs that migrate to the
	// idle shard must each run exactly once. The marks array doubles as a
	// race probe for overlapping chunk execution.
	p := NewSharded(ShardedConfig{
		Config: Config{Workers: 4, TenantWeights: map[string]int{
			"victim": 1, "urgent": 4,
		}},
		Shards:        2,
		StealInterval: 20 * time.Microsecond,
	})
	defer p.Close()
	rounds := 10
	if testing.Short() {
		rounds = 4
	}
	for round := 0; round < rounds; round++ {
		const n = 96
		marks := make([]int32, n)
		victim, err := p.SubmitTo(0, Request{
			N: n, Grain: 1, Tenant: "victim",
			Body: func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					time.Sleep(30 * time.Microsecond)
					atomic.AddInt32(&marks[i], 1)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, victim, Running)
		// Flood the victim's shard with urgent work: its dispatcher posts
		// shrink targets on the victim while the idle sibling shard steals
		// the queued urgent jobs through the same fair queue.
		var wg sync.WaitGroup
		var urgentRan atomic.Int64
		for i := 0; i < 12; i++ {
			u, err := p.SubmitTo(0, Request{
				N: 4, Tenant: "urgent", Priority: 5,
				Body: func(w, lo, hi int) {
					time.Sleep(50 * time.Microsecond)
					urgentRan.Add(int64(hi - lo))
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(u *Job) {
				defer wg.Done()
				if _, err := u.Wait(); err != nil {
					t.Errorf("round %d: urgent: %v", round, err)
				}
			}(u)
		}
		if _, err := victim.Wait(); err != nil {
			t.Fatalf("round %d: victim: %v", round, err)
		}
		wg.Wait()
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("round %d: victim iteration %d executed %d times, want 1 (preempt/steal duplicated or dropped a chunk)", round, i, m)
			}
		}
		if got := urgentRan.Load(); got != 12*4 {
			t.Fatalf("round %d: urgent jobs covered %d iterations, want %d", round, got, 12*4)
		}
	}
}
