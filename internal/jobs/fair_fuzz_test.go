package jobs

import (
	"fmt"
	"testing"
	"time"
)

// FuzzTenantAccounting drives the fair queue's deficit counters with random
// submit / admit / cancel / reweight streams decoded from the fuzz input
// (two bytes per op: opcode and argument), asserting after every op:
//
//   - non-negative balances: the queue size and every tenant's depth gauge
//     never go negative, and the depth gauges always sum to the size;
//   - pass monotonicity: a tenant's stride pass never decreases (the
//     catch-up rule only ever advances an idle tenant to the clock);
//   - pop soundness: pop returns a job iff the queue is non-empty, and
//     never returns the same job twice.
//
// And at the end, after draining:
//
//   - exact conservation of served chunks: every pushed job is popped
//     exactly once, and its iterations are either served (admission CAS
//     won) or canceled — pushed == served + canceled, nothing lost or
//     double-counted, whatever the interleaving of cancels and reweights.
//
// It mirrors FuzzChunker one layer up: the chunker fuzz proves the
// iteration space tiles exactly; this proves the admission queue conserves
// whole jobs under the weighted-fair policy.
func FuzzTenantAccounting(f *testing.F) {
	f.Add([]byte{0, 1, 0, 130, 1, 0, 2, 3, 0, 7, 3, 200, 1, 0, 1, 0})
	f.Add([]byte{0, 0, 0, 64, 0, 128, 0, 192, 1, 0, 2, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{3, 9, 0, 33, 4, 2, 0, 77, 2, 1, 1, 0, 3, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("op stream long enough; cap the per-case cost")
		}
		for _, fifo := range []bool{false, true} {
			fuzzAccounting(t, data, fifo)
		}
	})
}

func fuzzAccounting(t *testing.T, data []byte, fifo bool) {
	fq := newFairQueue(fifo, map[string]int{"t0": 3})
	tenants := [4]string{"t0", "t1", "t2", "t3"}
	var (
		queued                         []*Job // pushed, not yet popped
		popped                         = make(map[*Job]bool)
		pushedN, servedN, canceledN    int64
		pushedJobs, servedJ, canceledJ int
		lastPass                       = make(map[string]uint64)
	)
	check := func(op int) {
		t.Helper()
		fq.mu.Lock()
		defer fq.mu.Unlock()
		if fq.size < 0 {
			t.Fatalf("op %d (fifo=%v): negative queue size %d", op, fifo, fq.size)
		}
		if fq.size != len(queued) {
			t.Fatalf("op %d (fifo=%v): size %d, model says %d", op, fifo, fq.size, len(queued))
		}
		sum := int64(0)
		for name, tn := range fq.tenants {
			d := tn.depth.Load()
			if d < 0 {
				t.Fatalf("op %d (fifo=%v): tenant %s depth %d < 0", op, fifo, name, d)
			}
			sum += d
			if tn.pass < lastPass[name] {
				t.Fatalf("op %d (fifo=%v): tenant %s pass went backwards: %d -> %d",
					op, fifo, name, lastPass[name], tn.pass)
			}
			lastPass[name] = tn.pass
		}
		if sum != int64(fq.size) {
			t.Fatalf("op %d (fifo=%v): tenant depths sum to %d, size is %d", op, fifo, sum, fq.size)
		}
	}
	pop := func(op int) {
		t.Helper()
		j := fq.pop()
		if j == nil {
			if len(queued) != 0 {
				t.Fatalf("op %d (fifo=%v): pop returned nil with %d jobs queued", op, fifo, len(queued))
			}
			return
		}
		if popped[j] {
			t.Fatalf("op %d (fifo=%v): job popped twice", op, fifo)
		}
		popped[j] = true
		for i, q := range queued {
			if q == j {
				queued = append(queued[:i], queued[i+1:]...)
				break
			}
		}
		// The admission CAS: exactly one of served or canceled per job.
		if j.state.CompareAndSwap(int32(Pending), int32(Running)) {
			servedN += int64(j.req.N)
			servedJ++
		} else {
			canceledN += int64(j.req.N)
			canceledJ++
		}
	}
	for op := 0; op+1 < len(data); op += 2 {
		code, arg := data[op], data[op+1]
		switch code % 5 {
		case 0: // push
			j := &Job{tenant: tenants[arg%4], prio: int(arg%5) - 1}
			j.req.N = int(arg%50) + 1
			if arg%7 == 0 {
				j.deadline = time.Unix(int64(arg), 0)
			}
			j.state.Store(int32(Pending))
			fq.push(j)
			queued = append(queued, j)
			pushedN += int64(j.req.N)
			pushedJobs++
		case 1: // pop (admit)
			pop(op)
		case 2: // cancel a random queued job (it stays in the queue)
			if len(queued) > 0 {
				queued[int(arg)%len(queued)].state.CompareAndSwap(int32(Pending), int32(Canceled))
			}
		case 3: // reweight (also exercises the <1 clamp)
			fq.setWeight(tenants[arg%4], int(arg%10)-1)
		case 4: // register a brand-new tenant mid-stream
			fq.setWeight(fmt.Sprintf("x%d", arg%8), int(arg%6)+1)
		}
		check(op)
	}
	// Drain: every pushed job must come back out exactly once.
	for i := 0; len(queued) > 0; i++ {
		pop(len(data) + i)
		check(len(data) + i)
	}
	if fq.pop() != nil {
		t.Fatalf("fifo=%v: pop on an empty queue returned a job", fifo)
	}
	if servedJ+canceledJ != pushedJobs {
		t.Fatalf("fifo=%v: %d jobs pushed, %d served + %d canceled", fifo, pushedJobs, servedJ, canceledJ)
	}
	if servedN+canceledN != pushedN {
		t.Fatalf("fifo=%v: conservation broken: pushed %d iterations, served %d + canceled %d",
			fifo, pushedN, servedN, canceledN)
	}
	if fq.len() != 0 {
		t.Fatalf("fifo=%v: %d jobs left after drain", fifo, fq.len())
	}
}
