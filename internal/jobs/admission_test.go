package jobs_test

// Admission-layer tests: deadline-feasibility shedding, bounded-wait
// admission (MaxWait / NoWait), the per-tenant circuit breaker lifecycle
// (closed -> open -> half-open probe -> closed) and the OverloadError
// plumbing callers use to branch on rejections.

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/jobs"
)

// poll spins on a condition with a 5s deadline.
func poll(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// occupyWorkers submits one single-chunk job per worker, each blocking until
// the returned release func (idempotent, also registered with t.Cleanup so a
// Fatal while parked cannot hang the deferred Close) is called, and waits
// until they all run — so everything submitted afterwards must queue.
func occupyWorkers(t *testing.T, s *jobs.Scheduler, workers int) (release func(), blockers []*jobs.Job) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	for i := 0; i < workers; i++ {
		j, err := s.Submit(jobs.Request{N: 1, Tenant: "blocker", Body: func(w, lo, hi int) { <-ch }})
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, j)
	}
	poll(t, "blockers running", func() bool { return s.Stats().Running == workers })
	return release, blockers
}

func TestInfeasibleDeadlineShedAtSubmit(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 1, ShedInfeasible: true})
	defer s.Close()

	// Cold scheduler: no measured service rate, so even a hopeless deadline
	// must be admitted (shedding may not guess).
	runBatch(t, s, "acme", 1, -time.Hour)

	// Warm: the EWMA now holds a real per-job run time, so a deadline in the
	// past is provably unmeetable at submit.
	runBatch(t, s, "acme", 3, time.Hour)
	_, err := s.Submit(jobs.Request{
		N: 64, Tenant: "acme", Deadline: time.Now().Add(time.Nanosecond),
		Body: func(w, lo, hi int) { t.Error("infeasible job body ran") },
	})
	if !errors.Is(err, jobs.ErrInfeasible) {
		t.Fatalf("Submit = %v, want ErrInfeasible", err)
	}
	if d, ok := jobs.SuggestedRetry(err); !ok || d <= 0 {
		t.Fatalf("SuggestedRetry = %v, %v, want a positive delay", d, ok)
	}

	st := s.Stats()
	if st.InfeasibleTotal != 1 || st.ShedTotal != 1 {
		t.Fatalf("InfeasibleTotal/ShedTotal = %d/%d, want 1/1", st.InfeasibleTotal, st.ShedTotal)
	}
	ts := st.Tenants["acme"]
	if ts.InfeasibleTotal != 1 || ts.ShedTotal != 1 {
		t.Fatalf("tenant InfeasibleTotal/ShedTotal = %d/%d, want 1/1", ts.InfeasibleTotal, ts.ShedTotal)
	}
	// The shed job must not have been admitted: exactly the 4 earlier jobs
	// completed, and only the cold-start one missed.
	if ts.Completed != 4 || ts.DeadlineMissed != 1 {
		t.Fatalf("Completed/DeadlineMissed = %d/%d, want 4/1", ts.Completed, ts.DeadlineMissed)
	}
}

func TestBoundedWaitBackloggedAndNoWait(t *testing.T) {
	const maxWait = 15 * time.Millisecond
	s := jobs.New(jobs.Config{Workers: 1, QueueDepth: 1, MaxWait: maxWait})
	defer s.Close()

	release, blockers := occupyWorkers(t, s, 1)
	filler, err := s.Submit(jobs.Request{N: 64, Tenant: "acme", Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	poll(t, "filler holding the queue slot", func() bool { return s.Stats().QueueDepth == 1 })

	// Queue full: the third submission must block at most MaxWait and then
	// come back with ErrBacklogged instead of parking forever.
	start := time.Now()
	_, err = s.Submit(jobs.Request{N: 64, Tenant: "acme", Body: func(w, lo, hi int) { t.Error("backlogged job body ran") }})
	waited := time.Since(start)
	if !errors.Is(err, jobs.ErrBacklogged) {
		t.Fatalf("Submit = %v, want ErrBacklogged", err)
	}
	if waited < maxWait-time.Millisecond {
		t.Errorf("Submit returned after %v, want the full MaxWait (%v) wait", waited, maxWait)
	}
	if d, ok := jobs.SuggestedRetry(err); !ok || d <= 0 {
		t.Fatalf("SuggestedRetry = %v, %v, want a positive delay", d, ok)
	}

	// NoWait skips the wait entirely.
	_, err = s.Submit(jobs.Request{N: 64, Tenant: "acme", NoWait: true, Body: func(w, lo, hi int) { t.Error("NoWait job body ran") }})
	if !errors.Is(err, jobs.ErrBacklogged) {
		t.Fatalf("NoWait Submit = %v, want ErrBacklogged", err)
	}

	release()
	for _, j := range blockers {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := filler.Wait(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.BackloggedTotal != 2 || st.ShedTotal != 2 {
		t.Fatalf("BackloggedTotal/ShedTotal = %d/%d, want 2/2", st.BackloggedTotal, st.ShedTotal)
	}
	if ts := st.Tenants["acme"]; ts.BackloggedTotal != 2 {
		t.Fatalf("tenant BackloggedTotal = %d, want 2", ts.BackloggedTotal)
	}

	// Both rejections returned their queue slots: with the pool drained a
	// full queue's worth of submissions must admit cleanly.
	runBatch(t, s, "acme", 4, 0)
}

func TestBreakerLifecycle(t *testing.T) {
	const cooldown = 150 * time.Millisecond
	// SLOTarget 0.5 -> error budget 0.5; burn limit 1 means the breaker
	// opens once the miss EWMA crosses 0.5, which a run of consecutive
	// misses reaches after ~11 samples.
	s := jobs.New(jobs.Config{
		Workers: 1, SLOTarget: 0.5,
		BreakerBurnRate: 1, BreakerCooldown: cooldown,
	})
	defer s.Close()

	// Park the worker, then pile up already-missed deadline jobs so the
	// spammer holds the whole queue while its misses are recorded — the
	// queue-share guard must see the tenant actually crowding the pool.
	release, blockers := occupyWorkers(t, s, 1)
	var spam []*jobs.Job
	for i := 0; i < 24; i++ {
		j, err := s.Submit(jobs.Request{
			N: 64, Tenant: "spam", Deadline: time.Now().Add(-time.Hour),
			Body: func(w, lo, hi int) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		spam = append(spam, j)
	}
	release()
	for _, j := range append(blockers, spam...) {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	poll(t, "breaker to open", func() bool {
		return s.Stats().Tenants["spam"].BreakerState == "open"
	})

	// Open: the spammer is shed at intake with a retry hint, even with a
	// perfectly good deadline...
	_, err := s.Submit(jobs.Request{
		N: 64, Tenant: "spam", Deadline: time.Now().Add(time.Hour),
		Body: func(w, lo, hi int) { t.Error("shed job body ran") },
	})
	if !errors.Is(err, jobs.ErrBreakerOpen) {
		t.Fatalf("Submit = %v, want ErrBreakerOpen", err)
	}
	if d, ok := jobs.SuggestedRetry(err); !ok || d <= 0 {
		t.Fatalf("SuggestedRetry = %v, %v, want a positive delay", d, ok)
	}
	if ts := s.Stats().Tenants["spam"]; ts.ShedTotal <= 0 {
		t.Fatalf("tenant ShedTotal = %d, want > 0", ts.ShedTotal)
	}
	// ...while other tenants sail through.
	runBatch(t, s, "calm", 2, time.Hour)

	// After the cooldown the next spam submission is the half-open probe; it
	// hits its (generous) deadline, which must close the breaker again.
	time.Sleep(cooldown + 10*time.Millisecond)
	probe, err := s.Submit(jobs.Request{
		N: 64, Tenant: "spam", Deadline: time.Now().Add(time.Hour),
		Body: func(w, lo, hi int) {},
	})
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if _, err := probe.Wait(); err != nil {
		t.Fatal(err)
	}
	poll(t, "breaker to close after probe hit", func() bool {
		return s.Stats().Tenants["spam"].BreakerState == "closed"
	})
	// Recovered: ordinary submissions admit again.
	runBatch(t, s, "spam", 2, time.Hour)
}

func TestCanceledBeforeRunningLeavesSLOUntouched(t *testing.T) {
	// A deadline job canceled while still queued never ran, so it must not
	// count as a deadline miss, must not deposit an SLO sample, and must not
	// feed the breaker EWMA: shedding or alerting on jobs the caller
	// withdrew would charge tenants for load they took back.
	s := jobs.New(jobs.Config{Workers: 1, SLOTarget: 0.9, BreakerBurnRate: 1})
	defer s.Close()

	release, blockers := occupyWorkers(t, s, 1)
	var ran atomic.Bool
	victim, err := s.Submit(jobs.Request{
		N: 64, Tenant: "acme", Deadline: time.Now().Add(-time.Hour),
		Body: func(w, lo, hi int) { ran.Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !victim.Cancel() {
		t.Fatal("Cancel of a queued job reported false")
	}
	release()
	for _, j := range blockers {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := victim.Wait(); !errors.Is(err, jobs.ErrCanceled) {
		t.Fatalf("victim.Wait = %v, want ErrCanceled", err)
	}
	if ran.Load() {
		t.Fatal("canceled job body ran")
	}

	st := s.Stats()
	if st.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", st.Canceled)
	}
	if st.DeadlineMissed != 0 {
		t.Fatalf("DeadlineMissed = %d, want 0 for a canceled-before-running job", st.DeadlineMissed)
	}
	if ts, ok := st.Tenants["acme"]; ok {
		if ts.Completed != 0 || ts.DeadlineJobsTotal != 0 || ts.DeadlineMissed != 0 {
			t.Fatalf("tenant Completed/DeadlineJobsTotal/DeadlineMissed = %d/%d/%d, want 0/0/0",
				ts.Completed, ts.DeadlineJobsTotal, ts.DeadlineMissed)
		}
		if ts.SLO != nil && ts.SLO.WindowJobs != 0 {
			t.Fatalf("SLO WindowJobs = %d, want 0: the canceled job deposited a sample", ts.SLO.WindowJobs)
		}
		if ts.BreakerState == "open" || ts.BreakerState == "half-open" {
			t.Fatalf("BreakerState = %q after a canceled job, want closed or unset", ts.BreakerState)
		}
	}
}

func TestOverloadErrorPlumbing(t *testing.T) {
	e := &jobs.OverloadError{Err: jobs.ErrBacklogged, RetryAfter: 5 * time.Millisecond}
	if !errors.Is(e, jobs.ErrBacklogged) {
		t.Error("errors.Is does not match the wrapped sentinel")
	}
	if !strings.Contains(e.Error(), "retry after") {
		t.Errorf("Error() = %q, want the retry hint in the message", e.Error())
	}
	if d, ok := jobs.SuggestedRetry(e); !ok || d != 5*time.Millisecond {
		t.Errorf("SuggestedRetry = %v, %v, want 5ms, true", d, ok)
	}
	if _, ok := jobs.SuggestedRetry(errors.New("unrelated")); ok {
		t.Error("SuggestedRetry matched a non-admission error")
	}
	if _, ok := jobs.SuggestedRetry(nil); ok {
		t.Error("SuggestedRetry matched nil")
	}
}
