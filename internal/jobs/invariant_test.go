package jobs_test

// The deterministic invariant harness (internal/schedtest) drives every jobs
// runtime configuration with the same seeded op stream: elastic, rigid,
// capped, single-worker, and sharded with stealing on a hostile (tiny) steal
// interval. Run under -race; CI's nightly race-stress job repeats these with
// -count to shake out probabilistic interleavings.

import (
	"testing"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/schedtest"
)

// seed is fixed so failures reproduce; bump deliberately to explore a new
// stream, or override per-run with -invariant.seed if it ever becomes a
// flag. Logged by the harness on every run.
const seed = 0x5eed

func schedulerDrain(s *jobs.Scheduler) func() schedtest.DrainStats {
	return func() schedtest.DrainStats {
		st := s.Stats()
		return schedtest.DrainStats{
			BusyWorkers: st.BusyWorkers, QueueDepth: st.QueueDepth,
			Running: st.Running, Blocked: int(st.BlockedDepth),
		}
	}
}

func shardedDrain(p *jobs.Sharded) func() schedtest.DrainStats {
	return func() schedtest.DrainStats {
		st := p.Stats()
		return schedtest.DrainStats{
			BusyWorkers: st.Total.BusyWorkers, QueueDepth: st.Total.QueueDepth,
			Running: st.Total.Running, Blocked: int(st.Total.BlockedDepth),
		}
	}
}

func TestInvariantElasticScheduler(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 4})
	defer s.Close()
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed}, 4, schedulerDrain(s))
}

func TestInvariantRigidScheduler(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 4, DisableElastic: true})
	defer s.Close()
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed + 1}, 4, schedulerDrain(s))
}

func TestInvariantSingleWorker(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 1, QueueDepth: 4}) // tiny queue: backpressure in the stream
	defer s.Close()
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed + 2, Tenants: 4, OpsPerTenant: 25}, 1, schedulerDrain(s))
}

func TestInvariantCappedScheduler(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 4, MaxWorkersPerJob: 2, DefaultGrain: 8})
	defer s.Close()
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed + 3}, 4, schedulerDrain(s))
}

func TestInvariantShardedWithStealing(t *testing.T) {
	// The hostile configuration: 1-worker shards and a near-zero steal
	// interval maximise migration and lending churn.
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config:        jobs.Config{Workers: 4},
		Shards:        4,
		StealInterval: 20 * time.Microsecond,
	})
	defer p.Close()
	schedtest.RunJobInvariants(t, p, schedtest.InvariantOptions{Seed: seed + 4, Tenants: 8}, 4, shardedDrain(p))
}

func TestInvariantShardedNoStealing(t *testing.T) {
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config:          jobs.Config{Workers: 4},
		Shards:          2,
		DisableStealing: true,
	})
	defer p.Close()
	schedtest.RunJobInvariants(t, p, schedtest.InvariantOptions{Seed: seed + 5}, 4, shardedDrain(p))
}

func TestInvariantTenantWeights(t *testing.T) {
	// The standard op stream (which tags jobs with tenants, priorities and
	// deadlines) against a scheduler with registered unequal weights: the
	// structural invariants must hold whatever the admission order.
	s := jobs.New(jobs.Config{Workers: 4, TenantWeights: map[string]int{
		"acct-a": 4, "acct-b": 2, "acct-c": 1,
	}})
	defer s.Close()
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed + 7}, 4, schedulerDrain(s))
}

func TestInvariantFIFOPolicy(t *testing.T) {
	// The same stream with the policy disabled: the FIFO path must satisfy
	// the same structural invariants (it shares all execution machinery).
	s := jobs.New(jobs.Config{Workers: 4, DisableFair: true})
	defer s.Close()
	schedtest.RunJobInvariants(t, s, schedtest.InvariantOptions{Seed: seed + 8}, 4, schedulerDrain(s))
}

func TestInvariantWeightedShare(t *testing.T) {
	// Policy invariant: two tenants at 3:1 weights under sustained
	// saturation are served within 15% of 3:1 over a long seeded window.
	s := jobs.New(jobs.Config{Workers: 4, TenantWeights: map[string]int{
		"share-a": 3, "share-b": 1,
	}})
	defer s.Close()
	schedtest.RunWeightedShareInvariant(t, s,
		func() map[string]jobs.TenantStats { return s.Stats().Tenants },
		schedtest.FairnessOptions{WeightA: 3, WeightB: 1})
}

func TestInvariantWeightedShareSharded(t *testing.T) {
	// The same share invariant across a sharded pool with stealing: steals
	// pop through each victim's weighted-fair queue, so the pool-wide
	// served ratio must still track the weights.
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{Workers: 4, TenantWeights: map[string]int{
			"share-a": 3, "share-b": 1,
		}},
		Shards: 2,
	})
	defer p.Close()
	schedtest.RunWeightedShareInvariant(t, p,
		func() map[string]jobs.TenantStats { return p.Stats().Total.Tenants },
		schedtest.FairnessOptions{WeightA: 3, WeightB: 1})
}

func TestInvariantNoStarvation(t *testing.T) {
	// Policy invariant: a light tenant's jobs complete in bounded time
	// while a heavy tenant floods a sharded pool with stealing enabled.
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config:        jobs.Config{Workers: 4},
		Shards:        2,
		StealInterval: 50 * time.Microsecond,
	})
	defer p.Close()
	schedtest.RunNoStarvationInvariant(t, p, schedtest.FairnessOptions{})
}

func TestInvariantOverloadScheduler(t *testing.T) {
	// The admission-control stream against a deliberately tiny queue with
	// bounded waits, feasibility shedding and breakers armed: shed jobs never
	// run, rejections are typed with retry hints, shed accounting balances,
	// no queue slot leaks, and the abuser's breaker re-closes after recovery.
	s := jobs.New(jobs.Config{
		Workers: 2, QueueDepth: 6, MaxWait: 2 * time.Millisecond,
		ShedInfeasible: true, SLOTarget: 0.5,
		BreakerBurnRate: 1, BreakerCooldown: 200 * time.Millisecond,
	})
	defer s.Close()
	schedtest.RunOverloadInvariants(t, s,
		schedtest.OverloadInvariantOptions{Seed: seed + 11, QueueDepth: 6, Workers: 2},
		schedulerDrain(s),
		func() schedtest.ShedTotals {
			st := s.Stats()
			return schedtest.ShedTotals{Shed: st.ShedTotal, Infeasible: st.InfeasibleTotal, Backlogged: st.BackloggedTotal}
		},
		func(tenant string) string { return s.Stats().Tenants[tenant].BreakerState })
}

func TestInvariantOverloadSharded(t *testing.T) {
	// The same admission-control stream across a sharded pool: the breaker
	// check runs before cross-shard routing and the shed/slot accounting
	// must balance on the merged totals. Stealing is disabled so the
	// slot-leak probe's exact queue-fill count is deterministic.
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{
			Workers: 4, QueueDepth: 8, MaxWait: 2 * time.Millisecond,
			ShedInfeasible: true, SLOTarget: 0.5,
			BreakerBurnRate: 1, BreakerCooldown: 200 * time.Millisecond,
		},
		Shards:          2,
		DisableStealing: true,
	})
	defer p.Close()
	schedtest.RunOverloadInvariants(t, p,
		schedtest.OverloadInvariantOptions{Seed: seed + 12, QueueDepth: 8, Workers: 4},
		shardedDrain(p),
		func() schedtest.ShedTotals {
			st := p.Stats().Total
			return schedtest.ShedTotals{Shed: st.ShedTotal, Infeasible: st.InfeasibleTotal, Backlogged: st.BackloggedTotal}
		},
		func(tenant string) string { return p.Stats().Total.Tenants[tenant].BreakerState })
}

func TestInvariantShardedRigid(t *testing.T) {
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{Workers: 4, DisableElastic: true},
		Shards: 2,
	})
	defer p.Close()
	schedtest.RunJobInvariants(t, p, schedtest.InvariantOptions{Seed: seed + 6}, 4, shardedDrain(p))
}
