package jobs_test

// SLO accounting tests: every completion must deposit exactly one sample into
// its tenant's rolling window, the derived hit ratio / burn rate must match
// the deadline outcomes, and the sharded pool's Total view must rebuild the
// SLO from the union of the shard windows so it reconciles with the per-shard
// numbers.

import (
	"math"
	"testing"
	"time"

	"loopsched/internal/jobs"
)

// runBatch submits count jobs for tenant with the given deadline offset
// (zero means no deadline) and waits for them all.
func runBatch(t *testing.T, s *jobs.Scheduler, tenant string, count int, deadline time.Duration) {
	t.Helper()
	js := make([]*jobs.Job, 0, count)
	for i := 0; i < count; i++ {
		req := jobs.Request{N: 64, Tenant: tenant, Body: func(w, lo, hi int) {}}
		if deadline != 0 {
			req.Deadline = time.Now().Add(deadline)
		}
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	for _, j := range js {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSLOAccounting(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 2, SLOTarget: 0.9})
	defer s.Close()

	// 6 guaranteed hits (generous deadline), 2 guaranteed misses (deadline
	// already past at submission), 2 jobs with no deadline at all.
	runBatch(t, s, "acme", 6, time.Hour)
	runBatch(t, s, "acme", 2, -time.Hour)
	runBatch(t, s, "acme", 2, 0)

	ts, ok := s.Stats().Tenants["acme"]
	if !ok {
		t.Fatal("no tenant stats for acme")
	}
	if ts.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", ts.Completed)
	}
	if ts.DeadlineJobsTotal != 8 {
		t.Fatalf("DeadlineJobsTotal = %d, want 8", ts.DeadlineJobsTotal)
	}
	if ts.DeadlineMissed != 2 {
		t.Fatalf("DeadlineMissed = %d, want 2", ts.DeadlineMissed)
	}
	if ts.RunSumSeconds <= 0 {
		t.Fatalf("RunSumSeconds = %v, want > 0", ts.RunSumSeconds)
	}

	slo := ts.SLO
	if slo == nil {
		t.Fatal("nil SLO snapshot after completions")
	}
	if slo.Target != 0.9 {
		t.Fatalf("SLO target = %v, want 0.9", slo.Target)
	}
	if slo.WindowJobs != 10 {
		t.Fatalf("WindowJobs = %d, want 10", slo.WindowJobs)
	}
	if slo.DeadlineJobs != 8 || slo.DeadlineHits != 6 {
		t.Fatalf("DeadlineJobs/Hits = %d/%d, want 8/6", slo.DeadlineJobs, slo.DeadlineHits)
	}
	// Window totals must reconcile with the cumulative tenant counters while
	// the window hasn't wrapped.
	if int64(slo.DeadlineJobs) != ts.DeadlineJobsTotal {
		t.Fatalf("window DeadlineJobs %d != DeadlineJobsTotal %d", slo.DeadlineJobs, ts.DeadlineJobsTotal)
	}
	if int64(slo.DeadlineJobs-slo.DeadlineHits) != ts.DeadlineMissed {
		t.Fatalf("window misses %d != DeadlineMissed %d", slo.DeadlineJobs-slo.DeadlineHits, ts.DeadlineMissed)
	}
	wantRatio := 6.0 / 8.0
	if math.Abs(slo.HitRatio-wantRatio) > 1e-12 {
		t.Fatalf("HitRatio = %v, want %v", slo.HitRatio, wantRatio)
	}
	// Burn = miss fraction / error budget = 0.25 / 0.1.
	wantBurn := (1 - wantRatio) / (1 - 0.9)
	if math.Abs(slo.BurnRate-wantBurn) > 1e-9 {
		t.Fatalf("BurnRate = %v, want %v", slo.BurnRate, wantBurn)
	}
	if slo.WaitP50 < 0 || slo.WaitP99 < slo.WaitP50 {
		t.Fatalf("wait quantiles not ordered: p50=%v p99=%v", slo.WaitP50, slo.WaitP99)
	}
	if slo.RunP50 < 0 || slo.RunP99 < slo.RunP50 {
		t.Fatalf("run quantiles not ordered: p50=%v p99=%v", slo.RunP50, slo.RunP99)
	}
}

func TestSLONoDeadlineJobsIsUnexercised(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 2})
	defer s.Close()
	runBatch(t, s, "calm", 4, 0)

	slo := s.Stats().Tenants["calm"].SLO
	if slo == nil {
		t.Fatal("nil SLO after deadline-less completions")
	}
	if slo.Target != 0.99 {
		t.Fatalf("default SLO target = %v, want 0.99", slo.Target)
	}
	if slo.DeadlineJobs != 0 {
		t.Fatalf("DeadlineJobs = %d, want 0", slo.DeadlineJobs)
	}
	if slo.HitRatio != 1 || slo.BurnRate != 0 {
		t.Fatalf("unexercised SLO hit/burn = %v/%v, want 1/0", slo.HitRatio, slo.BurnRate)
	}
}

func TestSLONilBeforeFirstCompletion(t *testing.T) {
	s := jobs.New(jobs.Config{Workers: 2, TenantWeights: map[string]int{"idle": 1}})
	defer s.Close()
	if ts, ok := s.Stats().Tenants["idle"]; ok && ts.SLO != nil {
		t.Fatalf("registered-but-idle tenant has SLO %+v, want nil", ts.SLO)
	}
}

func TestSLOShardedMerge(t *testing.T) {
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{Workers: 2, SLOTarget: 0.5},
		Shards: 2,
	})
	defer p.Close()

	// Spread jobs for one tenant across the pool: half guaranteed misses.
	var js []*jobs.Job
	for i := 0; i < 12; i++ {
		dl := time.Now().Add(time.Hour)
		if i%2 == 0 {
			dl = time.Now().Add(-time.Hour)
		}
		j, err := p.Submit(jobs.Request{N: 64, Tenant: "spread", Deadline: dl, Body: func(w, lo, hi int) {}})
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	for _, j := range js {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	st := p.Stats()
	total, ok := st.Total.Tenants["spread"]
	if !ok {
		t.Fatal("no pool-wide tenant stats for spread")
	}
	if total.SLO == nil {
		t.Fatal("nil pool-wide SLO")
	}
	if total.SLO.WindowJobs != 12 {
		t.Fatalf("pool-wide WindowJobs = %d, want 12", total.SLO.WindowJobs)
	}
	if total.SLO.DeadlineJobs != 12 || total.SLO.DeadlineHits != 6 {
		t.Fatalf("pool-wide DeadlineJobs/Hits = %d/%d, want 12/6", total.SLO.DeadlineJobs, total.SLO.DeadlineHits)
	}
	if math.Abs(total.SLO.HitRatio-0.5) > 1e-12 {
		t.Fatalf("pool-wide HitRatio = %v, want 0.5", total.SLO.HitRatio)
	}
	// Miss fraction 0.5 over a 0.5 error budget burns at exactly 1.0.
	if math.Abs(total.SLO.BurnRate-1.0) > 1e-9 {
		t.Fatalf("pool-wide BurnRate = %v, want 1.0", total.SLO.BurnRate)
	}

	// The pool-wide window must be the union of the shard windows.
	var shardWindow, shardDeadline, shardHits int
	for _, ss := range st.Shards {
		if ts, ok := ss.Tenants["spread"]; ok && ts.SLO != nil {
			shardWindow += ts.SLO.WindowJobs
			shardDeadline += ts.SLO.DeadlineJobs
			shardHits += ts.SLO.DeadlineHits
		}
	}
	if shardWindow != total.SLO.WindowJobs || shardDeadline != total.SLO.DeadlineJobs || shardHits != total.SLO.DeadlineHits {
		t.Fatalf("shard union %d/%d/%d != pool-wide %d/%d/%d",
			shardWindow, shardDeadline, shardHits,
			total.SLO.WindowJobs, total.SLO.DeadlineJobs, total.SLO.DeadlineHits)
	}
}
