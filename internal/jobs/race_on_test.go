//go:build race

package jobs

// raceEnabled reports whether the test binary was built with -race.
const raceEnabled = true
