package jobs

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/trace"
)

// pollState spins until the job reaches want (or any terminal state) and
// returns the state it settled in.
func pollState(t *testing.T, j *Job, want State, timeout time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := j.State()
		if st == want || st == Done || st == Canceled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v waiting for %v", st, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSuspendResumeRunningExactlyOnce suspends a running elastic reduction
// mid-space, resumes it, and verifies the checkpoint/resume contract: every
// iteration executes exactly once, the reduction matches the closed form, the
// handle (and its trace id) is continuous, and the suspend parked at an exact
// chunk boundary (cursor watermark == iterations executed so far).
func TestSuspendResumeRunningExactlyOnce(t *testing.T) {
	tr := trace.NewTracer(64)
	s := testScheduler(t, 4, Config{Tracer: tr})
	const n = 4096
	marks := make([]atomic.Int32, n)
	j, err := s.Submit(Request{
		N:           n,
		Grain:       16,
		Commutative: true,
		Identity:    0,
		Combine:     func(a, b float64) float64 { return a + b },
		RBody: func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				marks[i].Add(1)
				acc += float64(i)
				time.Sleep(2 * time.Microsecond) // keep the job interruptible
			}
			return acc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	id := j.TraceID()
	// Let it make some progress, then ask for the quiesce.
	for j.State() == Pending {
		time.Sleep(100 * time.Microsecond)
	}
	if !j.Suspend() {
		t.Fatal("Suspend refused a pending/running job")
	}
	if st := pollState(t, j, Suspended, 10*time.Second); st == Canceled {
		t.Fatalf("job canceled instead of suspending")
	}
	if j.State() == Suspended {
		// Parked mid-space: the watermark must cover exactly the executed
		// prefix, nothing above it may have run.
		executed := 0
		for i := range marks {
			if marks[i].Load() > 0 {
				executed++
			}
		}
		if executed != j.resumeFrom {
			t.Fatalf("cursor watermark %d, but %d iterations executed", j.resumeFrom, executed)
		}
		for i := j.resumeFrom; i < n; i++ {
			if marks[i].Load() != 0 {
				t.Fatalf("iteration %d above watermark %d already ran", i, j.resumeFrom)
			}
		}
		st := s.Stats()
		if st.SuspendedDepth != 1 || st.SuspendedTotal < 1 {
			t.Fatalf("suspended depth/total = %d/%d, want 1/>=1", st.SuspendedDepth, st.SuspendedTotal)
		}
		if !j.Resume() {
			t.Fatal("Resume refused a suspended job")
		}
	}
	got, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * float64(n-1) / 2
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("reduction = %v, want %v", got, want)
	}
	for i := range marks {
		if c := marks[i].Load(); c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}
	if j.TraceID() != id {
		t.Fatalf("trace id changed across suspend/resume: %d -> %d", id, j.TraceID())
	}
}

// TestSuspendPendingJob suspends a job that is still queued: the suspension
// must take effect immediately (eager dequeue), remove the job from the
// fair-share depth, and resume must re-admit and complete it.
func TestSuspendPendingJob(t *testing.T) {
	s := testScheduler(t, 1, Config{})
	release := make(chan struct{})
	hog, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	var ran atomic.Int64
	j, err := s.Submit(Request{N: 8, Body: func(w, lo, hi int) { ran.Add(int64(hi - lo)) }})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Suspend() {
		t.Fatal("Suspend refused a pending job")
	}
	if st := j.State(); st != Suspended {
		t.Fatalf("state = %v, want suspended (pending suspension is immediate)", st)
	}
	if d := s.Stats().QueueDepth; d != 0 {
		t.Fatalf("queue depth = %d after suspension, want 0", d)
	}
	if !j.Suspend() {
		t.Fatal("re-suspending a suspended job must be accepted")
	}
	if !j.Resume() {
		t.Fatal("Resume refused a suspended job")
	}
	close(release)
	if _, err := hog.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("resumed job covered %d iterations, want 8", ran.Load())
	}
	if s.Stats().ResumedTotal != 1 {
		t.Fatalf("resumed_total = %d, want 1", s.Stats().ResumedTotal)
	}
}

// TestSuspendRefusals pins down the contract's false cases: blocked and
// terminal jobs refuse, Resume refuses anything not suspended.
func TestSuspendRefusals(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	up, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.Wait(); err != nil {
		t.Fatal(err)
	}
	if up.Suspend() {
		t.Fatal("Suspend accepted a done job")
	}
	if up.Resume() {
		t.Fatal("Resume accepted a done job")
	}
	gate, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}, After: []*Job{gate}})
	if err != nil {
		t.Fatal(err)
	}
	// The upstream may complete (and release dep) at any moment; Suspend must
	// refuse while dep is observably Blocked.
	if dep.State() == Blocked && dep.Suspend() && dep.State() == Blocked {
		t.Fatal("Suspend accepted a blocked job")
	}
	if _, err := dep.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseCancelsSuspendedKeepingCheckpoint shuts a scheduler down with a
// suspended durable job: the job cancels (suspend-to-disk), but its snapshot
// must survive in the store for the next process to recover.
func TestCloseCancelsSuspendedKeepingCheckpoint(t *testing.T) {
	store := NewMemStore()
	tr := trace.NewTracer(64)
	s := New(Config{Workers: 1, Tracer: tr, Checkpoints: store})
	release := make(chan struct{})
	hog, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	j, err := s.Submit(Request{
		N:           64,
		Commutative: true,
		Combine:     func(a, b float64) float64 { return a + b },
		RBody:       func(w, lo, hi int, acc float64) float64 { return acc },
		Checkpoint:  &Checkpoint{Workload: "noop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Suspend() {
		t.Fatal("Suspend refused a pending job")
	}
	close(release)
	if _, err := hog.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("suspended job after Close: err = %v, want ErrCanceled", err)
	}
	cps, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Fatalf("store holds %d checkpoints after Close, want 1 (suspend-to-disk)", len(cps))
	}
	if cps[0].JobID != j.TraceID() {
		t.Fatalf("checkpoint job id %d, want %d", cps[0].JobID, j.TraceID())
	}
	if cps[0].Workload != "noop" || cps[0].N != 64 {
		t.Fatalf("checkpoint identity %q/%d not preserved", cps[0].Workload, cps[0].N)
	}
}

// TestCrossSchedulerRecovery is in-process crash recovery: suspend a durable
// job on one scheduler, tear the scheduler down, and re-submit the job from
// the shared checkpoint store on a second scheduler. Every iteration must
// execute exactly once across the two "processes", the reduction must match
// the uninterrupted run bit-for-bit, and the recovered job must keep its id.
func TestCrossSchedulerRecovery(t *testing.T) {
	store := NewMemStore()
	const n = 2048
	marks := make([]atomic.Int32, n)
	body := func(w, lo, hi int, acc float64) float64 {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
			acc += math.Sqrt(float64(i))
			time.Sleep(time.Microsecond)
		}
		return acc
	}
	req := Request{
		N:           n,
		Grain:       16,
		Commutative: true,
		Combine:     func(a, b float64) float64 { return a + b },
		RBody:       body,
		Checkpoint:  &Checkpoint{Workload: "sqrtsum"},
	}

	s1 := New(Config{Workers: 2, Tracer: trace.NewTracer(64), Checkpoints: store})
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	id := j1.TraceID()
	for j1.State() == Pending {
		time.Sleep(100 * time.Microsecond)
	}
	j1.Suspend()
	pollState(t, j1, Suspended, 10*time.Second)
	s1.Close() // cancels the suspended job, keeps the checkpoint

	cps, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if j1.State() == Done {
		// The suspension raced completion; nothing left to recover.
		if len(cps) != 0 {
			t.Fatalf("store holds %d checkpoints after completion, want 0", len(cps))
		}
		return
	}
	if len(cps) != 1 {
		t.Fatalf("store holds %d checkpoints, want 1", len(cps))
	}
	cp := cps[0]
	if cp.JobID != id {
		t.Fatalf("checkpoint id %d, want %d", cp.JobID, id)
	}

	// "Restart": a fresh scheduler and tracer recover the job from the store.
	s2 := New(Config{Workers: 2, Tracer: trace.NewTracer(64), Checkpoints: store})
	defer s2.Close()
	req2 := req
	req2.Checkpoint = &cp
	j2, err := s2.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if j2.TraceID() != id {
		t.Fatalf("recovered job id %d, want original %d", j2.TraceID(), id)
	}
	got, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < cp.Cursor; i++ {
		want += math.Sqrt(float64(i))
	}
	tail := 0.0
	_ = tail
	for i := range marks {
		if c := marks[i].Load(); c != 1 {
			t.Fatalf("iteration %d executed %d times across restart (cursor %d)", i, c, cp.Cursor)
		}
	}
	// The recovered fold starts from the checkpointed Acc, so the result must
	// equal the same arrival-order fold the uninterrupted run produces up to
	// commutative reassociation; with exact-in-float64 increments unavailable,
	// compare against the serial sum within a tight tolerance.
	serial := 0.0
	for i := 0; i < n; i++ {
		serial += math.Sqrt(float64(i))
	}
	if diff := math.Abs(got - serial); diff > 1e-6*serial {
		t.Fatalf("recovered reduction %v, serial %v (diff %v)", got, serial, diff)
	}
	// Completion must have retired the snapshot.
	cps, _ = store.Load()
	if len(cps) != 0 {
		t.Fatalf("store holds %d checkpoints after recovered completion, want 0", len(cps))
	}
}

// TestSuspendedTimeNotCountedAsWait is the SLO-accounting regression test: a
// job parked in Suspended for a long pause must not charge that pause to the
// tenant's queue-wait sum (and so must not burn SLO latency budget).
func TestSuspendedTimeNotCountedAsWait(t *testing.T) {
	s := testScheduler(t, 1, Config{})
	release := make(chan struct{})
	hog, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	j, err := s.Submit(Request{N: 4, Tenant: "paused", Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Suspend() {
		t.Fatal("Suspend refused a pending job")
	}
	const pause = 150 * time.Millisecond
	time.Sleep(pause)
	if !j.Resume() {
		t.Fatal("Resume refused")
	}
	close(release)
	if _, err := hog.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	ts, ok := s.Stats().Tenants["paused"]
	if !ok {
		t.Fatal("no tenant stats for paused")
	}
	if ts.WaitSumSeconds >= pause.Seconds() {
		t.Fatalf("wait sum %.3fs includes the %.3fs suspension", ts.WaitSumSeconds, pause.Seconds())
	}
}

// TestSuspendCancelWhileSuspended cancels a suspended job: Wait must report
// ErrCanceled, the suspended gauge must drop, and Resume must refuse.
func TestSuspendCancelWhileSuspended(t *testing.T) {
	s := testScheduler(t, 1, Config{})
	release := make(chan struct{})
	hog, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	for s.Stats().Running == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	j, err := s.Submit(Request{N: 4, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Suspend() {
		t.Fatal("Suspend refused a pending job")
	}
	if !j.Cancel() {
		t.Fatal("Cancel refused a suspended job")
	}
	if j.Resume() {
		t.Fatal("Resume accepted a canceled job")
	}
	if _, err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if d := s.Stats().SuspendedDepth; d != 0 {
		t.Fatalf("suspended depth = %d after cancel, want 0", d)
	}
	close(release)
	if _, err := hog.Wait(); err != nil {
		t.Fatal(err)
	}
}
