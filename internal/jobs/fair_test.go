package jobs

import (
	"testing"
	"time"
)

// fqJob builds a bare Pending job for direct fairQueue tests.
func fqJob(tenant string, prio int, deadline time.Time) *Job {
	j := &Job{tenant: tenant, prio: prio, deadline: deadline}
	j.req.N = 1
	j.state.Store(int32(Pending))
	return j
}

func popTenants(fq *fairQueue, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		j := fq.pop()
		if j == nil {
			break
		}
		out = append(out, j.tenant)
	}
	return out
}

func TestFairQueueStrideRespectsWeights(t *testing.T) {
	fq := newFairQueue(false, map[string]int{"gold": 3, "bronze": 1})
	for i := 0; i < 9; i++ {
		fq.push(fqJob("gold", 0, time.Time{}))
	}
	for i := 0; i < 3; i++ {
		fq.push(fqJob("bronze", 0, time.Time{}))
	}
	gold := 0
	for _, tn := range popTenants(fq, 12) {
		if tn == "gold" {
			gold++
		}
	}
	if gold != 9 || fq.len() != 0 {
		t.Fatalf("popped %d gold of 12, queue left %d", gold, fq.len())
	}
	// Any 4-pop window of the steady state serves gold exactly 3 times;
	// check the first 8 pops of a fresh refill.
	for i := 0; i < 8; i++ {
		fq.push(fqJob("gold", 0, time.Time{}))
		fq.push(fqJob("bronze", 0, time.Time{}))
	}
	seq := popTenants(fq, 8)
	gold = 0
	for _, tn := range seq {
		if tn == "gold" {
			gold++
		}
	}
	if gold != 6 {
		t.Fatalf("8 pops served gold %d times, want 6 (3:1): %v", gold, seq)
	}
}

func TestFairQueueDeadlinePresenceDoesNotStarveTenants(t *testing.T) {
	// Regression: a tenant stamping deadlines on every job must NOT beat a
	// deadline-less tenant out of its weighted share — EDF orders deadline
	// work against deadline work only.
	fq := newFairQueue(false, map[string]int{"gold": 3, "bronze": 1})
	soon := time.Now().Add(time.Millisecond)
	for i := 0; i < 9; i++ {
		fq.push(fqJob("gold", 0, time.Time{}))
	}
	for i := 0; i < 9; i++ {
		fq.push(fqJob("bronze", 0, soon)) // all carry deadlines
	}
	firstEight := popTenants(fq, 8)
	gold := 0
	for _, tn := range firstEight {
		if tn == "gold" {
			gold++
		}
	}
	if gold != 6 {
		t.Fatalf("deadline-stamping tenant bent the share: first 8 pops %v, want 6 gold", firstEight)
	}
}

func TestFairQueueEDFOrdersDeadlineWork(t *testing.T) {
	// When both heads carry deadlines at equal priority, the earlier
	// deadline is admitted first, whatever the stride order says.
	fq := newFairQueue(false, map[string]int{"a": 1, "b": 1})
	late := time.Now().Add(time.Hour)
	early := time.Now().Add(time.Millisecond)
	fq.push(fqJob("a", 0, late))
	fq.push(fqJob("b", 0, early))
	if j := fq.pop(); j.tenant != "b" {
		t.Fatalf("first pop = %s, want b (earlier deadline)", j.tenant)
	}
}

func TestFairQueuePriorityBeatsWeightsAndDeadlines(t *testing.T) {
	fq := newFairQueue(false, map[string]int{"heavy": 8})
	fq.push(fqJob("heavy", 0, time.Now().Add(time.Microsecond)))
	fq.push(fqJob("light", 5, time.Time{}))
	if j := fq.pop(); j.tenant != "light" {
		t.Fatalf("first pop = %s, want the higher-priority tenant", j.tenant)
	}
}

func TestFairQueueClockIsClassFloorNotWinnerPass(t *testing.T) {
	// Regression: a priority pop selecting a tenant whose pass is far ahead
	// must not drag the clock (and with it, re-activating tenants) up to
	// that inflated pass.
	fq := newFairQueue(false, map[string]int{"ahead": 1, "behind": 1})
	// Advance "ahead" several strides.
	for i := 0; i < 4; i++ {
		fq.push(fqJob("ahead", 0, time.Time{}))
	}
	popTenants(fq, 4)
	fq.push(fqJob("behind", 0, time.Time{})) // pass 0, the class floor
	fq.push(fqJob("ahead", 9, time.Time{}))  // priority pop selects "ahead"
	if j := fq.pop(); j.tenant != "ahead" {
		t.Fatal("priority pop did not select the high-priority job")
	}
	// A tenant re-activating now must catch up to the floor (0-ish), not to
	// "ahead"'s multi-stride pass: it gets served next, before "behind"
	// would otherwise grind through the inflated gap.
	fq.push(fqJob("fresh", 0, time.Time{}))
	fq.mu.Lock()
	fresh, behind := fq.tenants["fresh"].pass, fq.tenants["behind"].pass
	fq.mu.Unlock()
	if fresh > behind {
		t.Fatalf("re-activated tenant pass %d caught up past the class floor %d", fresh, behind)
	}
}
