package jobs

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/stats"
	"loopsched/internal/topology"
	"loopsched/internal/trace"
)

// ShardedConfig configures a Sharded pool. The embedded Config applies to
// every shard, except that Workers is the *total* worker count (partitioned
// across shards along topology groups) and QueueDepth is the total admission
// budget (split evenly).
type ShardedConfig struct {
	Config
	// Shards is the number of per-domain shards; <= 0 derives it from the
	// machine topology (one shard per cache/socket group, so a machine that
	// fits one group gets exactly one shard). It is clamped to the worker
	// count: every shard owns at least one worker.
	Shards int
	// StealInterval is how often a fully idle shard re-scans its siblings
	// for queued jobs to steal or running elastic jobs to lend workers to;
	// <= 0 selects 200µs. Larger intervals reduce idle wake-ups at the cost
	// of slower work conservation under skew.
	StealInterval time.Duration
	// DisableStealing turns off cross-shard stealing and lending: shards
	// become fully independent pools behind one router. It exists for
	// comparison (the shardburst benchmark measures stealing against it).
	DisableStealing bool
}

func (c *ShardedConfig) normalize() {
	c.Config.normalize()
	if c.Shards <= 0 {
		c.Shards = topology.Detect(c.Workers).NumGroups
	}
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 200 * time.Microsecond
	}
}

// ResolveShardCount returns the shard count NewSharded builds for the given
// total worker count and requested shard count (<= 0 selects the
// topology-derived default): the clamp to one-worker-per-shard plus the tail
// merge from ceil group sizing. Callers that need to predict the layout
// without instantiating the pool (Pool.AsyncShards) share this logic so the
// prediction cannot drift from the runtime.
func ResolveShardCount(workers, shards int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := ShardedConfig{Config: Config{Workers: workers}, Shards: shards}
	cfg.normalize()
	groupSize := (cfg.Workers + cfg.Shards - 1) / cfg.Shards
	return topology.New(cfg.Workers, groupSize).NumGroups
}

// Sharded partitions one worker set into per-topology-domain shards, each a
// full Scheduler with its own dispatcher event loop, behind a lightweight
// router. Submitted jobs are admitted to the least-loaded shard (or pinned
// with SubmitTo); an idle shard steals whole queued jobs from loaded siblings
// and lends workers to their running under-provisioned elastic jobs, so
// utilization stays high under skewed tenant mixes without any scheduler-wide
// serialization point: the shards share no lock, no queue and no barrier —
// only per-job atomics during migration.
type Sharded struct {
	cfg    ShardedConfig
	topo   topology.Topology
	shards []*Scheduler

	// adm is the pool-wide admission-control state (see admission.go),
	// shared by every shard through the unexported Config.admission field:
	// a tenant's circuit breaker opens and closes for the whole pool, and
	// the breaker check runs here — before cross-shard routing — so a shed
	// submission costs no routing scan.
	adm *admissionState

	// ready gates the steal hooks until every shard exists: shard 0's
	// dispatcher starts before shard 1 is constructed.
	ready atomic.Bool
	// stealOff disables cross-shard traffic during teardown, so a stolen job
	// can never land on a shard that is already closing.
	stealOff atomic.Bool
	// rr is bumped by every submit (routeFor) AND by every idle dispatcher's
	// steal/lend scan; padded so the submit hot path never shares a cache
	// line with the migration seqlock below.
	rr barrier.PaddedUint64

	// migrateBegin/migrateEnd bracket every cross-shard counter migration:
	// a steal (a queued job's depth moves between shards) and a dependency
	// release (a job leaves one shard's blocked gauge for another shard's
	// queue depth). Stats uses them as a seqlock: a snapshot taken while
	// begin != end, or during which begin advanced, may be torn — counting
	// a migrating job on two shards or on neither — and is retried. Each is
	// padded: Stats readers spin on them while stealers write them.
	migrateBegin barrier.PaddedUint64
	migrateEnd   barrier.PaddedUint64

	closeMu sync.Mutex
	closed  bool
}

// NewSharded creates and starts a sharded pool.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cfg.normalize()
	groupSize := (cfg.Workers + cfg.Shards - 1) / cfg.Shards
	p := &Sharded{
		cfg:    cfg,
		topo:   topology.New(cfg.Workers, groupSize),
		shards: make([]*Scheduler, 0, cfg.Shards),
	}
	perQueue := (cfg.QueueDepth + cfg.Shards - 1) / cfg.Shards
	if perQueue < 1 {
		perQueue = 1
	}
	// One admission state for the whole pool: breakers trip on pool-wide
	// deadline outcomes and the queue-share guard sees all shards.
	p.adm = newAdmissionState(cfg.Config)
	p.adm.share = func(tenant string) float64 {
		var own, total int64
		for _, s := range p.shards {
			own += s.fq.depthOf(tenant)
			total += s.depth.Load()
		}
		if total <= 0 {
			return 0
		}
		return float64(own) / float64(total)
	}
	for g := 0; g < p.topo.NumGroups; g++ {
		sc := cfg.Config
		sc.Workers = len(p.topo.GroupMembers(g))
		sc.QueueDepth = perQueue
		sc.Name = fmt.Sprintf("%s-shard%d", cfg.Name, g)
		sc.pool = p
		sc.admission = p.adm
		// Every shard shares the pool's tracer (inherited through the Config
		// copy) and stamps its own index on the events it emits.
		sc.shard = g
		if !cfg.DisableStealing && cfg.Shards > 1 {
			sc.hooks = &stealHooks{
				totalP:   cfg.Workers,
				interval: cfg.StealInterval,
				steal:    p.stealFor,
				lend:     p.lendFor,
			}
		}
		p.shards = append(p.shards, New(sc))
	}
	// Rounding the group size up can merge the tail: the actual shard count
	// is the topology's group count.
	p.cfg.Shards = len(p.shards)
	p.ready.Store(true)
	return p
}

// Shards returns the number of shards.
func (p *Sharded) Shards() int { return len(p.shards) }

// P returns the total worker count across all shards.
func (p *Sharded) P() int { return p.cfg.Workers }

// Name returns the pool's diagnostic name.
func (p *Sharded) Name() string { return p.cfg.Name }

// Shard returns the i'th shard scheduler (for stats and tests).
func (p *Sharded) Shard(i int) *Scheduler { return p.shards[i] }

// Topology returns the topology the shards were placed on.
func (p *Sharded) Topology() topology.Topology { return p.topo }

// routeFor picks the admission shard for one of the named tenant's jobs:
// primarily the least-loaded shard (fewest jobs waiting or running per
// worker), with load ties broken by where the tenant has the fewest jobs
// already queued — spreading one tenant's burst across shards keeps the
// per-shard weighted-fair queues short for everyone else — and finally
// round-robin so a burst that arrives on an idle pool spreads instead of
// piling onto shard 0.
func (p *Sharded) routeFor(tenant string) *Scheduler {
	n := len(p.shards)
	if n == 1 {
		return p.shards[0]
	}
	start := int(p.rr.Add(1) % uint64(n))
	best := p.shards[start]
	bestLoad := shardLoad(best)
	bestTenant := best.fq.depthOf(tenant)
	for k := 1; k < n; k++ {
		s := p.shards[(start+k)%n]
		l := shardLoad(s)
		if l > bestLoad {
			continue
		}
		td := s.fq.depthOf(tenant)
		if l < bestLoad || td < bestTenant {
			best, bestLoad, bestTenant = s, l, td
		}
	}
	return best
}

// shardLoad scores a shard for admission routing: queued tenants dominate
// (a job behind a queue waits a full job, not a chunk), then occupancy, both
// normalized by the shard's team size.
func shardLoad(s *Scheduler) float64 {
	return (float64(s.depth.Load())*4 + float64(s.running.Load()) + float64(s.busy.Load())) / float64(s.p)
}

// Submit enqueues a job on the least-loaded shard and returns immediately.
// It blocks only when that shard's admission queue is full, bounded by
// Config.MaxWait/Request.NoWait; with the breakers armed an open tenant
// breaker sheds the submission here, before any routing work. Safe from any
// number of goroutines.
func (p *Sharded) Submit(req Request) (*Job, error) {
	if err := p.shedAtIntake(&req); err != nil {
		return nil, err
	}
	return p.routeFor(req.Tenant).Submit(req)
}

// shedAtIntake runs the pool-level breaker check for one submission: the
// cheap pre-routing half of admission control (the feasibility and
// bounded-wait checks need a shard's queue view and run after routing).
func (p *Sharded) shedAtIntake(req *Request) error {
	if !p.adm.breakersOn() {
		return nil
	}
	tenant := tenantName(req.Tenant)
	retry, ok := p.adm.allow(tenant, time.Now())
	if ok {
		return nil
	}
	if p.cfg.Tracer != nil {
		tr := p.cfg.Tracer.Begin(tenant, req.Label, req.Priority)
		tr.Event(trace.EvSubmitted, 0, 0, "")
		tr.Event(trace.EvShed, 0, 0, "breaker")
	}
	return &OverloadError{Err: ErrBreakerOpen, RetryAfter: retry}
}

// SubmitBatch admits len(reqs) independent jobs in one call, filling out[i]
// with the job for reqs[i]. The whole batch is routed to ONE shard — chosen
// by the routing policy for the first request's tenant — so a single
// fair-queue lock acquisition admits all of it; sibling shards rebalance by
// stealing whole jobs as usual if the batch outruns the shard. See
// (*Scheduler).SubmitBatch for the request restrictions (no After edges) and
// the partial-failure contract.
func (p *Sharded) SubmitBatch(reqs []Request, out []*Job) error {
	if len(reqs) == 0 {
		return nil
	}
	return p.routeFor(tenantName(reqs[0].Tenant)).SubmitBatch(reqs, out)
}

// SetTenantWeight registers (or re-weights) a tenant's fair-share weight on
// every shard; weights < 1 are clamped to 1. Safe for concurrent use.
func (p *Sharded) SetTenantWeight(name string, weight int) {
	for _, s := range p.shards {
		s.SetTenantWeight(name, weight)
	}
}

// SubmitTo pins a job to the given shard (for tenants with domain-local
// state). The job can still be stolen by an idle sibling unless stealing is
// disabled; pinning controls admission, not execution exclusivity. A pinned
// job with dependencies re-enters the pinned shard's own queue when its
// upstreams release it, instead of routing to the least-loaded shard.
func (p *Sharded) SubmitTo(shard int, req Request) (*Job, error) {
	if shard < 0 || shard >= len(p.shards) {
		return nil, fmt.Errorf("jobs: shard %d out of range [0,%d)", shard, len(p.shards))
	}
	if err := p.shedAtIntake(&req); err != nil {
		return nil, err
	}
	return p.shards[shard].submitPinned(req)
}

// stealFor pulls one whole queued job from the most convenient loaded
// sibling and migrates it onto thief. Runs on thief's dispatcher goroutine.
// Migration protocol: the Pending→stealing CAS excludes Cancel while the
// job's home pointer and the two shards' depth counters move; Cancel during
// the window fails (the job will run), and afterwards it lands on the thief.
func (p *Sharded) stealFor(thief *Scheduler) *Job {
	if !p.ready.Load() || p.stealOff.Load() {
		return nil
	}
	n := len(p.shards)
	start := int(p.rr.Add(1) % uint64(n))
	for k := 0; k < n; k++ {
		victim := p.shards[(start+k)%n]
		if victim == thief || victim.depth.Load() == 0 {
			continue
		}
		j := victim.stealQueued()
		if j == nil {
			continue
		}
		if !j.state.CompareAndSwap(int32(Pending), stateStealing) {
			// Canceled while queued: Cancel already took it out of the
			// depth; dropping it here is exactly what the victim's
			// dispatcher would have done on pop.
			continue
		}
		p.migrateBegin.Add(1)
		victim.depth.Add(-1)
		victim.releaseQueueSlot()
		j.s = thief
		thief.depth.Add(1)
		thief.forceQueueSlot()
		p.migrateEnd.Add(1)
		j.state.Store(int32(Pending))
		if j.tr != nil {
			j.tr.Event(trace.EvStolen, thief.cfg.shard, 0, fmt.Sprintf("from=%d", victim.cfg.shard))
		}
		return j
	}
	return nil
}

// lendFor finds a running under-provisioned elastic job on a sibling shard
// for thief to lend idle workers to. Runs on thief's dispatcher goroutine.
func (p *Sharded) lendFor(thief *Scheduler) *Job {
	if !p.ready.Load() || p.stealOff.Load() {
		return nil
	}
	n := len(p.shards)
	start := int(p.rr.Add(1) % uint64(n))
	for k := 0; k < n; k++ {
		victim := p.shards[(start+k)%n]
		if victim == thief {
			continue
		}
		if j := victim.lendableJob(); j != nil {
			return j
		}
	}
	return nil
}

// Close drains every shard and releases all workers. Jobs submitted before
// Close complete normally (including jobs mid-steal and foreign jobs still
// running on lent workers); Submit fails with ErrClosed afterwards. Close is
// idempotent and safe to call concurrently: every call returns only after
// the teardown has completed.
func (p *Sharded) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closed {
		return
	}
	// Stop cross-shard traffic first: once a shard is closed its sibling
	// must not re-home jobs onto it.
	p.stealOff.Store(true)
	for _, s := range p.shards {
		s.Close()
	}
	p.closed = true
}

// ShardedStats is a snapshot of the whole sharded pool: the merged totals
// plus each shard's own snapshot, in shard order.
type ShardedStats struct {
	// Total aggregates all shards: counters are summed; latency quantiles
	// are computed over the union of the shards' recent windows.
	Total Stats `json:"total"`
	// Shards holds each shard's snapshot (index = shard id = topology group).
	Shards []Stats `json:"shards"`
}

// Stats returns a snapshot of all shards and the merged totals. The
// snapshot is consistent with respect to cross-shard steals and dependency
// releases: a job mid-migration would otherwise be counted on both shards
// or on neither (whichever side the walk visits first), so the walk is
// bracketed by the migration seqlock and retried on a torn read.
func (p *Sharded) Stats() ShardedStats {
	for attempt := 0; ; attempt++ {
		// Read end before begin: an in-flight migration then shows up as
		// begin > end no matter how the loads interleave with it.
		e := p.migrateEnd.Load()
		b := p.migrateBegin.Load()
		out := p.statsSnapshot()
		if b == e && p.migrateBegin.Load() == b {
			return out
		}
		if attempt >= 64 {
			// Continuous migration traffic: a torn depth (off by one job)
			// beats never returning.
			return out
		}
		runtime.Gosched()
	}
}

// statsSnapshot walks the shards and merges totals without any exclusion;
// consistency against in-flight migrations is the caller's (Stats's)
// responsibility via the seqlock.
func (p *Sharded) statsSnapshot() ShardedStats {
	out := ShardedStats{Shards: make([]Stats, len(p.shards))}
	var tot, run []float64
	for i, s := range p.shards {
		st, wt, wr := s.statsWindows()
		out.Shards[i] = st
		out.Total.Workers += st.Workers
		out.Total.BusyWorkers += st.BusyWorkers
		out.Total.QueueDepth += st.QueueDepth
		out.Total.Running += st.Running
		out.Total.Submitted += st.Submitted
		out.Total.Completed += st.Completed
		out.Total.Canceled += st.Canceled
		out.Total.IterationsDone += st.IterationsDone
		out.Total.Grown += st.Grown
		out.Total.Peeled += st.Peeled
		out.Total.Stolen += st.Stolen
		out.Total.Lent += st.Lent
		out.Total.BlockedDepth += st.BlockedDepth
		out.Total.Released += st.Released
		out.Total.DepCanceled += st.DepCanceled
		out.Total.Preempted += st.Preempted
		out.Total.DeadlineMissed += st.DeadlineMissed
		out.Total.ShedTotal += st.ShedTotal
		out.Total.InfeasibleTotal += st.InfeasibleTotal
		out.Total.BackloggedTotal += st.BackloggedTotal
		out.Total.SuspendedDepth += st.SuspendedDepth
		out.Total.SuspendedTotal += st.SuspendedTotal
		out.Total.ResumedTotal += st.ResumedTotal
		out.Total.CheckpointWrites += st.CheckpointWrites
		out.Total.CheckpointFailures += st.CheckpointFailures
		// Per-tenant accounting merges across shards: counters sum (a job
		// stolen mid-queue is submitted on one shard and completes on
		// another, so only the pool-wide sums reconcile); the weight is the
		// registered value, identical on every shard that has seen it.
		for name, ts := range st.Tenants {
			if out.Total.Tenants == nil {
				out.Total.Tenants = make(map[string]TenantStats)
			}
			agg := out.Total.Tenants[name]
			if ts.Weight > agg.Weight {
				agg.Weight = ts.Weight
			}
			agg.QueueDepth += ts.QueueDepth
			agg.Submitted += ts.Submitted
			agg.Completed += ts.Completed
			agg.IterationsDone += ts.IterationsDone
			agg.Preempted += ts.Preempted
			agg.DeadlineMissed += ts.DeadlineMissed
			agg.DeadlineJobsTotal += ts.DeadlineJobsTotal
			agg.WaitSumSeconds += ts.WaitSumSeconds
			agg.RunSumSeconds += ts.RunSumSeconds
			// SLO windows concatenate across shards; the pool-wide snapshot is
			// rebuilt from the union after the walk.
			agg.sloWait = append(agg.sloWait, ts.sloWait...)
			agg.sloRun = append(agg.sloRun, ts.sloRun...)
			agg.sloHits += ts.sloHits
			agg.sloMisses += ts.sloMisses
			out.Total.Tenants[name] = agg
		}
		out.Total.LatencySamples += st.LatencySamples
		out.Total.LatencySumSeconds += st.LatencySumSeconds
		out.Total.RunSumSeconds += st.RunSumSeconds
		tot = append(tot, wt...)
		run = append(run, wr...)
	}
	if len(tot) > 0 {
		q := stats.Quantiles(tot, 0.5, 0.95, 0.99)
		out.Total.LatencyP50, out.Total.LatencyP95, out.Total.LatencyP99 = secs(q[0]), secs(q[1]), secs(q[2])
		q = stats.Quantiles(run, 0.5, 0.95, 0.99)
		out.Total.RunP50, out.Total.RunP95, out.Total.RunP99 = secs(q[0]), secs(q[1]), secs(q[2])
	}
	for name, agg := range out.Total.Tenants {
		agg.SLO = buildTenantSLO(p.cfg.SLOTarget, agg.sloWait, agg.sloRun, agg.sloHits, agg.sloMisses)
		out.Total.Tenants[name] = agg
	}
	// The admission layer's ledger merges only into the totals: breaker
	// sheds happen before routing (no shard owns them), and the per-tenant
	// shed counters and breaker states are pool-wide by construction.
	out.Total.ShedTotal += p.adm.breakerShed.Load()
	out.Total.Tenants = p.adm.fillTenantStats(out.Total.Tenants)
	return out
}
