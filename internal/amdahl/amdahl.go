// Package amdahl estimates scheduler burden the way the paper does: the
// measured speedup of a parallel loop with sequential time T on P workers is
// modelled as
//
//	S(T) = T / (d + T/P)
//
// where d is the work-distribution (scheduling) time — the "burden". Given a
// set of (T, S) measurements from a granularity sweep, Fit estimates d by
// least squares. The model is linear in disguise: T/S = d + T/P, so d is the
// intercept of a constrained linear regression of T/S against T with slope
// fixed at 1/P; we also expose the unconstrained fit, whose slope estimates
// the effective parallelism actually achieved.
package amdahl

import (
	"errors"
	"fmt"
	"math"
)

// Point is one measurement of the granularity sweep: sequential duration T
// of the loop body (seconds) and the speedup S observed when running it
// under the scheduler being characterised on P workers.
type Point struct {
	T float64 // sequential execution time, seconds
	S float64 // measured speedup (T / parallel time)
}

// Fit is the result of estimating the burden model from a sweep.
type Fit struct {
	// D is the estimated burden (work distribution time), in seconds: the
	// least-squares estimate of d in S = T/(d + T/P) with P fixed at the
	// worker count — the paper's model, fit the paper's way.
	D float64
	// DIntercept is the intercept of the unconstrained fit of T/S against T
	// (slope free). When the largest loops scale ideally it agrees with D;
	// when they do not (memory bandwidth, frequency scaling), it separates
	// the asymptotic-efficiency effect from the per-loop overhead, at the
	// cost of trading intercept against slope, so it is reported only as a
	// diagnostic.
	DIntercept float64
	// P is the worker count the model was fit for.
	P int
	// EffectiveP is the parallelism implied by the unconstrained fit
	// (1/slope); values well below P indicate the scheduler also limits
	// asymptotic scalability, not just small-loop latency.
	EffectiveP float64
	// R2 is the coefficient of determination of the unconstrained model on
	// the transformed data (T/S vs T).
	R2 float64
	// Residual is the root-mean-square error of predicted vs measured
	// speedup.
	Residual float64
}

// Model returns the speedup the fitted model predicts for a loop with
// sequential time t seconds.
func (f Fit) Model(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return t / (f.D + t/float64(f.P))
}

// BreakEven returns the sequential loop duration at which the fitted model
// predicts a speedup of 1 — i.e. the loop granularity below which parallel
// execution does not pay off. Returns +Inf if the scheduler never breaks
// even (P <= 1).
func (f Fit) BreakEven() float64 {
	if f.P <= 1 {
		return math.Inf(1)
	}
	// t/(d + t/P) = 1  =>  t (1 - 1/P) = d  =>  t = d·P/(P-1)
	return f.D * float64(f.P) / float64(f.P-1)
}

// String implements fmt.Stringer.
func (f Fit) String() string {
	return fmt.Sprintf("d=%.2fus effP=%.1f R2=%.3f", f.D*1e6, f.EffectiveP, f.R2)
}

// FitBurden estimates the burden d from sweep measurements for a machine
// with p workers. At least two points with positive T and S are required.
//
// The measurements are transformed to y = T/S (the parallel execution time,
// which the model predicts to equal d + T/P). The reported burden D
// minimises Σ (y_i − d − T_i/p)² with the slope pinned to 1/p, whose closed
// form is d = mean(y_i − T_i/p). Negative estimates are clamped to zero
// (they arise only from measurement noise or superlinear cache effects).
// DIntercept and EffectiveP come from the unconstrained line through (T, y)
// and diagnose how ideally the largest loops scale.
func FitBurden(points []Point, p int) (Fit, error) {
	if p <= 0 {
		return Fit{}, errors.New("amdahl: non-positive worker count")
	}
	var xs, ys []float64 // x = T, y = T/S
	for _, pt := range points {
		if pt.T <= 0 || pt.S <= 0 || math.IsNaN(pt.S) || math.IsInf(pt.S, 0) {
			continue
		}
		xs = append(xs, pt.T)
		ys = append(ys, pt.T/pt.S)
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("amdahl: need at least two valid measurements")
	}
	// Constrained fit: slope fixed at 1/p, intercept = mean residual.
	slope := 1 / float64(p)
	var sum float64
	for i := range xs {
		sum += ys[i] - slope*xs[i]
	}
	dc := sum / float64(len(xs))
	if dc < 0 {
		dc = 0
	}

	// Unconstrained fit, reported as a diagnostic: intercept and implied
	// asymptotic parallelism.
	di := dc
	effP := float64(p)
	if a, b, _, err := linearFit(xs, ys); err == nil && b > 0 {
		effP = 1 / b
		if a >= 0 {
			di = a
		} else {
			di = 0
		}
	}

	fit := Fit{D: dc, DIntercept: di, P: p, EffectiveP: effP}

	// Goodness of fit on the transformed data for the reported model
	// (intercept dc, slope 1/p).
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot, ssSpeed float64
	for i := range xs {
		pred := dc + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
		predS := fit.Model(xs[i])
		measS := xs[i] / ys[i]
		ssSpeed += (predS - measS) * (predS - measS)
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	fit.Residual = math.Sqrt(ssSpeed / float64(len(xs)))
	return fit, nil
}

// linearFit duplicates stats.LinearFit to keep this package dependency-free
// (it is imported by packages that stats itself uses in tests).
func linearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, errors.New("amdahl: bad sample")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("amdahl: degenerate x")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, 0, nil
}
