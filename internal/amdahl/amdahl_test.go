package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

// synth generates noiseless measurements from the model itself.
func synth(d float64, p int, ts []float64) []Point {
	pts := make([]Point, len(ts))
	for i, t := range ts {
		pts[i] = Point{T: t, S: t / (d + t/float64(p))}
	}
	return pts
}

func sweepTimes() []float64 {
	// 1 µs .. 10 ms, geometric.
	var ts []float64
	for t := 1e-6; t <= 1e-2; t *= 2 {
		ts = append(ts, t)
	}
	return ts
}

func TestFitRecoversKnownBurden(t *testing.T) {
	for _, d := range []float64{1e-6, 5.67e-6, 31.94e-6, 68.8e-6} {
		for _, p := range []int{8, 24, 48} {
			fit, err := FitBurden(synth(d, p, sweepTimes()), p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fit.D-d) > 0.02*d+1e-9 {
				t.Errorf("p=%d d=%v: recovered %v", p, d, fit.D)
			}
			if fit.R2 < 0.999 {
				t.Errorf("p=%d d=%v: R2 = %v", p, d, fit.R2)
			}
		}
	}
}

func TestFitOrderingMatchesTable1(t *testing.T) {
	// Synthetic data in the paper's Table 1 proportions must preserve the
	// ordering of the recovered burdens.
	p := 48
	burdens := map[string]float64{
		"fine-grain-tree": 5.67e-6,
		"openmp-static":   8.12e-6,
		"openmp-dynamic":  31.94e-6,
		"cilk":            68.80e-6,
	}
	fits := map[string]float64{}
	for name, d := range burdens {
		fit, err := FitBurden(synth(d, p, sweepTimes()), p)
		if err != nil {
			t.Fatal(err)
		}
		fits[name] = fit.D
	}
	if !(fits["fine-grain-tree"] < fits["openmp-static"] &&
		fits["openmp-static"] < fits["openmp-dynamic"] &&
		fits["openmp-dynamic"] < fits["cilk"]) {
		t.Errorf("ordering not preserved: %v", fits)
	}
	ratio := fits["cilk"] / fits["fine-grain-tree"]
	if math.Abs(ratio-12.13) > 0.5 {
		t.Errorf("cilk/fine-grain ratio = %.2f, want ~12.1", ratio)
	}
}

func TestModelAndBreakEven(t *testing.T) {
	fit := Fit{D: 10e-6, P: 48}
	if s := fit.Model(0); s != 0 {
		t.Errorf("Model(0) = %v", s)
	}
	// Very coarse loops approach the ideal speedup P.
	if s := fit.Model(10); s < 47 {
		t.Errorf("Model(10s) = %v, want close to 48", s)
	}
	be := fit.BreakEven()
	// At the break-even granularity speedup is 1 by definition.
	if math.Abs(fit.Model(be)-1) > 1e-9 {
		t.Errorf("Model(BreakEven) = %v", fit.Model(be))
	}
	if !math.IsInf((Fit{D: 1e-6, P: 1}).BreakEven(), 1) {
		t.Errorf("single worker should never break even")
	}
	if (Fit{D: 3e-6, P: 48}).String() == "" {
		t.Errorf("String is empty")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := FitBurden(nil, 48); err == nil {
		t.Errorf("accepted empty input")
	}
	if _, err := FitBurden(synth(1e-6, 48, sweepTimes()), 0); err == nil {
		t.Errorf("accepted p=0")
	}
	// Points with non-positive T or S are skipped.
	pts := []Point{{T: -1, S: 2}, {T: 1e-3, S: 0}, {T: 1e-3, S: math.NaN()}}
	if _, err := FitBurden(pts, 48); err == nil {
		t.Errorf("accepted a sweep with no valid points")
	}
}

func TestInterceptDiagnosticsOnIdealData(t *testing.T) {
	// On data generated exactly from the model, the unconstrained intercept
	// and effective parallelism must agree with the constrained estimate and
	// the true P.
	d, p := 12e-6, 24
	fit, err := FitBurden(synth(d, p, sweepTimes()), p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.DIntercept-d) > 0.05*d {
		t.Errorf("DIntercept = %v, want ~%v", fit.DIntercept, d)
	}
	if math.Abs(fit.EffectiveP-float64(p)) > 0.5 {
		t.Errorf("EffectiveP = %v, want ~%d", fit.EffectiveP, p)
	}
}

func TestInterceptSeparatesScalingLoss(t *testing.T) {
	// Data whose asymptotic parallelism is only 20 on a 24-worker model:
	// the constrained estimate absorbs the scaling loss (grows with the
	// largest T), while the unconstrained intercept stays near the true
	// per-loop overhead.
	d, pReal, pModel := 10e-6, 20, 24
	pts := synth(d, pReal, sweepTimes())
	fit, err := FitBurden(pts, pModel)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.DIntercept-d) > 0.1*d {
		t.Errorf("DIntercept = %v, want ~%v", fit.DIntercept, d)
	}
	if fit.D <= fit.DIntercept {
		t.Errorf("constrained estimate %v should exceed the intercept %v when scaling is imperfect", fit.D, fit.DIntercept)
	}
	if math.Abs(fit.EffectiveP-float64(pReal)) > 1 {
		t.Errorf("EffectiveP = %v, want ~%d", fit.EffectiveP, pReal)
	}
}

func TestNegativeBurdenClampedToZero(t *testing.T) {
	// Measurements better than the ideal model (superlinear, e.g. cache
	// effects) would give a negative burden; the estimator clamps to 0.
	p := 8
	pts := []Point{{T: 1e-3, S: 8.5}, {T: 2e-3, S: 8.4}, {T: 4e-3, S: 8.6}}
	fit, err := FitBurden(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if fit.D != 0 {
		t.Errorf("burden = %v, want clamp to 0", fit.D)
	}
}

func TestPropertyRecoverRandomBurden(t *testing.T) {
	f := func(dMicro uint16, pRaw uint8) bool {
		d := (float64(dMicro%200) + 1) * 1e-6
		p := int(pRaw%63) + 2
		fit, err := FitBurden(synth(d, p, sweepTimes()), p)
		if err != nil {
			return false
		}
		return math.Abs(fit.D-d) <= 0.05*d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
