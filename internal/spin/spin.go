// Package spin provides low-level busy-wait primitives used by the barrier
// and scheduler implementations.
//
// Fine-grain loop scheduling lives or dies by the latency of its wait loops:
// a worker that parks on an OS primitive pays wake-up latencies measured in
// microseconds, which is the entire budget of the loops this library targets.
// The waiters here therefore spin first, back off politely, and only yield to
// the Go scheduler when the wait drags on (for example when the machine is
// oversubscribed).
package spin

import (
	"runtime"
	"sync/atomic"
)

// Tunable spin parameters. They are variables (not constants) so tests and
// the benchmark harness can shrink them; production code should not need to
// touch them.
//
// The thresholds are deliberately high: the workers of this library are
// dedicated, pinned threads (the paper's model), and the waits on the
// fine-grain fast path are microseconds long. Yielding to the Go scheduler
// from a worker that owns a core turns a one-cache-miss wake-up into a
// scheduler round trip, and when every core hosts a spinning worker the
// resulting runtime.Gosched storm collapses throughput by an order of
// magnitude (measured on a 24-core host: ~4 µs per loop with tight spinning
// versus ~250 µs with eager yielding). The yield tier therefore only engages
// after roughly a millisecond of fruitless polling — long enough that it
// matters only when the machine is genuinely oversubscribed.
var (
	// ActiveSpins is the number of tight polls performed before any backoff
	// at all. On the fast path (microsecond waits) the wait completes inside
	// this window.
	ActiveSpins = 1 << 16

	// YieldThreshold is the number of polls after which the waiter starts
	// interleaving runtime.Gosched calls, letting other goroutines (for
	// example, oversubscribed workers) make progress. Between ActiveSpins
	// and YieldThreshold the waiter uses a light fixed backoff that keeps it
	// on its core.
	YieldThreshold = 1 << 20
)

// Wait polls cond until it returns true. It spins tightly for a short
// window, then mixes in scheduler yields so that oversubscribed workers
// cannot livelock each other.
func Wait(cond func() bool) {
	for i := 0; ; i++ {
		if cond() {
			return
		}
		pause(i)
	}
}

// WaitBounded polls cond until it returns true or maxPolls polls have been
// performed. It reports whether the condition became true. maxPolls <= 0
// means "poll exactly once".
func WaitBounded(cond func() bool, maxPolls int) bool {
	if maxPolls <= 0 {
		maxPolls = 1
	}
	for i := 0; i < maxPolls; i++ {
		if cond() {
			return true
		}
		pause(i)
	}
	return cond()
}

// WaitUint32 waits until addr's value equals want.
func WaitUint32(addr *atomic.Uint32, want uint32) {
	for i := 0; ; i++ {
		if addr.Load() == want {
			return
		}
		pause(i)
	}
}

// WaitUint32Not waits until addr's value differs from avoid and returns the
// observed value.
func WaitUint32Not(addr *atomic.Uint32, avoid uint32) uint32 {
	for i := 0; ; i++ {
		if v := addr.Load(); v != avoid {
			return v
		}
		pause(i)
	}
}

// WaitUint64AtLeast waits until addr's value is at least want and returns
// the observed value.
func WaitUint64AtLeast(addr *atomic.Uint64, want uint64) uint64 {
	for i := 0; ; i++ {
		if v := addr.Load(); v >= want {
			return v
		}
		pause(i)
	}
}

// pause implements the backoff policy for the i-th failed poll.
func pause(i int) {
	switch {
	case i < ActiveSpins:
		procYield()
	case i < YieldThreshold:
		// Light backoff: brief busywork that still keeps the thread
		// runnable, avoiding the cost of a full reschedule.
		for j := 0; j < 8; j++ {
			procYield()
		}
	default:
		runtime.Gosched()
	}
}

// procYield is a CPU-relax hint. Pure Go has no PAUSE intrinsic; a tiny
// volatile-ish loop through an atomic keeps the optimizer from deleting the
// delay while staying cheap (a handful of nanoseconds).
func procYield() {
	atomic.LoadUint32(&relaxSink)
}

var relaxSink uint32

// Backoff implements bounded exponential backoff for contended
// compare-and-swap loops (used by the work-stealing deque and the
// centralized barrier).
type Backoff struct {
	n int
}

// Pause waits for the current backoff duration and doubles it, up to a cap.
func (b *Backoff) Pause() {
	if b.n == 0 {
		b.n = 4
	}
	for i := 0; i < b.n; i++ {
		procYield()
	}
	if b.n < 1024 {
		b.n *= 2
	} else {
		runtime.Gosched()
	}
}

// Reset restores the initial (shortest) backoff duration.
func (b *Backoff) Reset() { b.n = 0 }
