package spin

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitReturnsWhenConditionTrue(t *testing.T) {
	var flag atomic.Bool
	done := make(chan struct{})
	go func() {
		Wait(flag.Load)
		close(done)
	}()
	select {
	case <-done:
		t.Fatalf("Wait returned before the condition was set")
	case <-time.After(time.Millisecond):
	}
	flag.Store(true)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Wait did not observe the condition")
	}
}

func TestWaitImmediate(t *testing.T) {
	calls := 0
	Wait(func() bool { calls++; return true })
	if calls != 1 {
		t.Errorf("condition evaluated %d times, want 1", calls)
	}
}

func TestWaitBounded(t *testing.T) {
	if WaitBounded(func() bool { return false }, 10) {
		t.Errorf("WaitBounded reported success for a never-true condition")
	}
	if !WaitBounded(func() bool { return true }, 0) {
		t.Errorf("WaitBounded must poll at least once")
	}
	n := 0
	ok := WaitBounded(func() bool { n++; return n > 3 }, 100)
	if !ok {
		t.Errorf("WaitBounded missed a condition that became true")
	}
}

func TestWaitUint32(t *testing.T) {
	var v atomic.Uint32
	go func() {
		time.Sleep(time.Millisecond)
		v.Store(7)
	}()
	WaitUint32(&v, 7)
	if v.Load() != 7 {
		t.Fatalf("unexpected value")
	}

	var w atomic.Uint32
	go func() {
		time.Sleep(time.Millisecond)
		w.Store(3)
	}()
	if got := WaitUint32Not(&w, 0); got != 3 {
		t.Errorf("WaitUint32Not = %d, want 3", got)
	}
}

func TestWaitUint64AtLeast(t *testing.T) {
	var v atomic.Uint64
	go func() {
		for i := 0; i < 10; i++ {
			time.Sleep(100 * time.Microsecond)
			v.Add(1)
		}
	}()
	if got := WaitUint64AtLeast(&v, 5); got < 5 {
		t.Errorf("returned %d, want >= 5", got)
	}
}

func TestBackoffGrowsAndResets(t *testing.T) {
	var b Backoff
	b.Pause()
	if b.n != 8 {
		t.Errorf("after first pause n = %d, want 8", b.n)
	}
	for i := 0; i < 20; i++ {
		b.Pause()
	}
	if b.n < 1024 {
		t.Errorf("backoff did not saturate: %d", b.n)
	}
	b.Reset()
	if b.n != 0 {
		t.Errorf("Reset did not clear the backoff")
	}
}

func TestPauseTiersDoNotPanic(t *testing.T) {
	// Exercise all three tiers of the backoff policy directly.
	for _, i := range []int{0, ActiveSpins, ActiveSpins + 1, YieldThreshold, YieldThreshold + 5} {
		pause(i)
	}
}
