//go:build race

package loopsched

// raceEnabled reports whether the test binary was built with -race.
const raceEnabled = true
